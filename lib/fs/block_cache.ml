open Fs_types
module Phys_mem = Rio_mem.Phys_mem
module Page_alloc = Rio_mem.Page_alloc
module Disk = Rio_disk.Disk

type entry = {
  blkno : int;
  paddr : int;
  mutable dirty : bool;
  mutable owner : Fs_types.owner;
  mutable valid : int;
  mutable tick : int;
  mutable pinned : bool;
}

type fill = Zero | From_disk

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  writebacks : int;
  fills : int;
}

type t = {
  name : string;
  mem : Phys_mem.t;
  disk : Disk.t;
  alloc : Page_alloc.t;
  hooks : Hooks.t;
  sector_of_blkno : int -> int;
  backed : bool;
  table : (int, entry) Hashtbl.t;
  mutable ndirty : int;  (* dirty entries in [table]: flush_dirty's early-out *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
  mutable fills : int;
}

let create ~name ~mem ~disk ~alloc ~hooks ~sector_of_blkno ~backed =
  {
    name;
    mem;
    disk;
    alloc;
    hooks;
    sector_of_blkno;
    backed;
    table = Hashtbl.create 256;
    ndirty = 0;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writebacks = 0;
    fills = 0;
  }

let touch t entry =
  t.clock <- t.clock + 1;
  entry.tick <- t.clock

let write_back ?via t entry ~sync =
  if t.backed then begin
    let data = Phys_mem.blit_out t.mem entry.paddr ~len:block_bytes in
    let sector = t.sector_of_blkno entry.blkno in
    (match (via, sync) with
    | _, true -> Disk.write_sync t.disk ~sector data
    | Some stage, false -> stage ~sector data
    | None, false -> Disk.write_async t.disk ~sector data);
    t.writebacks <- t.writebacks + 1
  end;
  if entry.dirty then t.ndirty <- t.ndirty - 1;
  entry.dirty <- false

let remove_entry t entry =
  if entry.dirty then t.ndirty <- t.ndirty - 1;
  entry.dirty <- false;
  Hashtbl.remove t.table entry.blkno;
  t.hooks.Hooks.note_unmap ~paddr:entry.paddr;
  Page_alloc.free t.alloc entry.paddr

(* Choose the least-recently-used unpinned victim, preferring clean pages so
   an overflowing cache does not always pay a synchronous disk write. *)
let pick_victim t =
  let best = ref None in
  let consider e =
    if not e.pinned then
      match !best with
      | None -> best := Some e
      | Some b ->
        let better =
          if e.dirty = b.dirty then e.tick < b.tick
          else b.dirty (* prefer the clean one *)
        in
        if better then best := Some e
  in
  Hashtbl.iter (fun _ e -> consider e) t.table;
  !best

let evict_one t =
  match pick_victim t with
  | None -> false
  | Some victim ->
    if victim.dirty then begin
      if not t.backed then err "%s: memory file system full (all pages dirty)" t.name;
      write_back t victim ~sync:true
    end;
    t.evictions <- t.evictions + 1;
    remove_entry t victim;
    true

let acquire_page t =
  match Page_alloc.alloc t.alloc with
  | Some paddr -> paddr
  | None ->
    if not (evict_one t) then err "%s: out of pages and nothing evictable" t.name;
    (match Page_alloc.alloc t.alloc with
    | Some paddr -> paddr
    | None -> err "%s: page pool exhausted by other users" t.name)

let fill_entry t entry fill =
  match fill with
  | Zero ->
    t.hooks.Hooks.open_write ~paddr:entry.paddr;
    Phys_mem.fill t.mem entry.paddr ~len:block_bytes '\000';
    t.hooks.Hooks.close_write ~paddr:entry.paddr
  | From_disk ->
    if t.backed then begin
      let sector = t.sector_of_blkno entry.blkno in
      let data = Disk.read_sync t.disk ~sector ~count:sectors_per_block in
      t.hooks.Hooks.open_write ~paddr:entry.paddr;
      Phys_mem.blit_in t.mem entry.paddr data;
      t.hooks.Hooks.close_write ~paddr:entry.paddr;
      t.fills <- t.fills + 1
    end
    else begin
      (* Unbacked caches have no disk image: a miss is a fresh zero block. *)
      t.hooks.Hooks.open_write ~paddr:entry.paddr;
      Phys_mem.fill t.mem entry.paddr ~len:block_bytes '\000';
      t.hooks.Hooks.close_write ~paddr:entry.paddr
    end

let announce t entry =
  t.hooks.Hooks.note_map ~paddr:entry.paddr ~blkno:entry.blkno ~owner:entry.owner
    ~valid:entry.valid

let get t ~blkno ~owner ~fill =
  match Hashtbl.find_opt t.table blkno with
  | Some entry ->
    t.hits <- t.hits + 1;
    touch t entry;
    if entry.owner <> owner then begin
      entry.owner <- owner;
      announce t entry
    end;
    entry
  | None ->
    t.misses <- t.misses + 1;
    let paddr = acquire_page t in
    let entry = { blkno; paddr; dirty = false; owner; valid = block_bytes; tick = 0; pinned = false } in
    touch t entry;
    Hashtbl.replace t.table blkno entry;
    fill_entry t entry fill;
    announce t entry;
    entry

let lookup t ~blkno = Hashtbl.find_opt t.table blkno

let mark_dirty t entry =
  touch t entry;
  if not entry.dirty then t.ndirty <- t.ndirty + 1;
  entry.dirty <- true

let set_valid t entry valid =
  entry.valid <- valid;
  announce t entry

let flush_dirty ?via t ~sync ?(only = fun _ -> true) () =
  (* Nothing dirty, nothing to scan: the update daemon calls this on every
     pass, so a clean cache must not pay a full-table walk. *)
  if t.ndirty = 0 then 0
  else begin
    let before = t.ndirty in
    let flushed = ref 0 in
    let dirty = ref [] in
    Hashtbl.iter (fun _ e -> if e.dirty && only e then dirty := e :: !dirty) t.table;
    (* Deterministic order: by block number. *)
    let sorted = List.sort (fun a b -> compare a.blkno b.blkno) !dirty in
    List.iter
      (fun e ->
        write_back ?via t e ~sync;
        incr flushed)
      sorted;
    (* Each write_back retired exactly one dirty entry from the count. *)
    assert (t.ndirty = before - !flushed);
    !flushed
  end

let invalidate t ~blkno =
  match Hashtbl.find_opt t.table blkno with
  | None -> ()
  | Some entry -> remove_entry t entry

let drop_all t =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  List.iter (fun e -> remove_entry t e) entries

let iter t f =
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) t.table [] in
  let sorted = List.sort (fun a b -> compare a.blkno b.blkno) entries in
  List.iter f sorted

let dirty_count t = t.ndirty

let stats t =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; writebacks = t.writebacks;
    fills = t.fills }

(* ---- world-template rewind ----

   Entries point at simulated pages whose contents rewind with the
   memory snapshot; the host-side table (which blocks are cached, where,
   dirty bits, LRU ticks, statistics) is deep-copied here so a restored
   world sees the identical cache population and eviction order. *)

type checkpoint = {
  ck_entries : entry list; (* copies, one per table entry *)
  ck_ndirty : int;
  ck_clock : int;
  ck_stats : stats;
}

let checkpoint t =
  {
    ck_entries = Hashtbl.fold (fun _ e acc -> { e with blkno = e.blkno } :: acc) t.table [];
    ck_ndirty = t.ndirty;
    ck_clock = t.clock;
    ck_stats = stats t;
  }

let restore t ck =
  Hashtbl.reset t.table;
  List.iter (fun e -> Hashtbl.replace t.table e.blkno { e with blkno = e.blkno }) ck.ck_entries;
  t.ndirty <- ck.ck_ndirty;
  t.clock <- ck.ck_clock;
  t.hits <- ck.ck_stats.hits;
  t.misses <- ck.ck_stats.misses;
  t.evictions <- ck.ck_stats.evictions;
  t.writebacks <- ck.ck_stats.writebacks;
  t.fills <- ck.ck_stats.fills

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d evictions=%d writebacks=%d fills=%d" s.hits s.misses
    s.evictions s.writebacks s.fills
