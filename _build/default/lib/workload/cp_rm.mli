(** cp+rm: "recursively copies then recursively removes the Digital Unix
    source tree (40 MB)" (§4). The source tree is synthetic
    ({!File_tree}); the timed portion is the copy and the remove, reported
    separately as in Table 2's "(cp+rm)" split. *)

type t

val create : ?total_bytes:int -> ?seed:int -> unit -> t
(** Default 40 MB, as in the paper. *)

val source_root : t -> string
val dest_root : t -> string

val setup : t -> Rio_fs.Fs.t -> unit
(** Materialize the source tree (untimed by the harness convention: measure
    deltas around {!run_cp}/{!run_rm}). *)

val run_cp : t -> Rio_fs.Fs.t -> unit
val run_rm : t -> Rio_fs.Fs.t -> unit
(** Removes the copy (not the source). *)

val bytes : t -> int
val file_count : t -> int
