(** The unified harness Run API.

    Every harness entry point ({!Reliability.run}, {!Performance.run},
    {!Ablation.run}, {!Vista_experiment.run}, {!Rio_check}'s explorer, and
    {!Rio_fuzz}'s fuzzer) takes one {!config} record instead of a
    per-function spread of optional arguments. The fields mean the same
    thing everywhere:

    - [seed] — base seed; every run is a pure function of it.
    - [trials] — how many completed crash tests (or transactions, sweep
      steps, fuzz programs, ...) each cell needs. Exhaustive experiments
      ignore it.
    - [scale] — workload scale factor (1.0 = the paper's sizes).
    - [domains] — worker domains for {!Rio_parallel.Pool}; results are
      merged in seed order, so any value yields byte-identical output.
    - [trace_dir] — when set, the flight recorder is on and per-trial
      traces land here; [None] means zero-overhead tracing-off.
    - [progress] — per-cell progress callback (wrapped in a mutex sink
      when [domains > 1]).

    The previous per-function signatures survive one release as thin
    deprecated wrappers in each module's [Legacy] submodule. *)

type config = {
  seed : int;
  trials : int;
  scale : float;
  domains : int;
  trace_dir : string option;
  progress : Progress.t -> unit;
}

val default : config
(** [seed 1; trials 50; scale 1.0; domains 1; trace_dir None;
    progress ignore]. Build variations with functional update:
    [{ Run.default with seed = 7; domains = 4 }]. *)

val progress_sink : config -> Progress.t -> unit
(** The config's progress callback, wrapped in {!Rio_parallel.Pool.sink}
    when [domains > 1] so worker domains may call it concurrently. *)

val reporter : config -> total:int -> (label:string -> detail:string -> unit)
(** A ready-made per-cell completion reporter: counts completions with an
    atomic (globally monotonic at any [domains]) and forwards to the
    progress sink. *)
