(** The randomized crash-schedule fuzzer, with counterexample shrinking.

    The explorer proves the atomicity contracts over every boundary of a
    few fixed scenarios; the fuzzer samples the space the scenarios cannot
    reach — random op {e sequences} over a growing tree, with the crash at
    a random boundary of a random op (stratified by boundary class, so the
    rare metadata/registry/Vista boundaries get sampled as often as the
    plentiful data-store windows). Each trial is a pure function of
    (spec, seed, trial index): generate a program
    ({!Rio_workload.Script.Gen}), count its boundaries with a disarmed
    pass, pick one, re-run tripping there, warm-reboot, and audit
    ({!Program.check}).

    A violating trial is then {e shrunk} — delta debugging over both axes:
    drop ops the failure does not need (re-validating every candidate by
    running it, remapping the crash ordinal into the in-flight op's
    shifted boundary range), and walk the crash ordinal down to the first
    failing boundary. The result is a minimal program + boundary pair,
    replayed once more with the flight recorder live so the report carries
    a {!Rio_obs.Forensics} narrative.

    Trials shard across domains via {!Rio_parallel.Pool} and merge in
    trial order, so {!render} output is byte-identical at any [domains]. *)

exception Invalid_program
(** A (shrunk) sub-program referenced a file an earlier removed op would
    have created. Never escapes {!run}; candidates that raise it are
    simply not failures. *)

(** {1 Single attempts (exposed for tests)} *)

type attempt = {
  boundaries : int;
  labels : string list;  (** Boundary labels in ordinal order. *)
  op_starts : int array;
      (** [op_starts.(k)] = first boundary ordinal of op [k]; length
          [ops + 1], the last entry closing the final op's range. *)
  crashed_during : int option;
  tripped : string option;
  problems : string list;
}

val run_attempt :
  ?obs:Rio_obs.Trace.t ->
  spec:Rio_check.Explorer.spec ->
  seed:int ->
  ops:Rio_workload.Script.Gen.op list ->
  trip:int ->
  unit ->
  attempt
(** Build a fresh world, run [ops], crash at boundary [trip] ([-1] =
    count only), recover and audit. Raises {!Invalid_program} if [ops] is
    not executable in order. *)

val shrink :
  spec:Rio_check.Explorer.spec ->
  world_seed:int ->
  ops:Rio_workload.Script.Gen.op list ->
  ordinal:int ->
  Rio_workload.Script.Gen.op list * int * int * int
(** [(ops', ordinal', in_flight', attempts)] — a locally minimal failing
    (program, boundary) pair, starting from a known-failing one. Budgeted
    (a few hundred candidate runs) and deterministic. *)

(** {1 The fuzz run} *)

type counterexample = {
  trial : int;
  original_ops : int;
  original_ordinal : int;
  ops : Rio_workload.Script.Gen.op list;  (** Shrunk program. *)
  ordinal : int;  (** Shrunk crash boundary. *)
  in_flight : int;  (** Index of the op the crash interrupts. *)
  label : string;  (** The boundary's stable label. *)
  problems : string list;
  narrative : string list;  (** Forensics replay of the minimum. *)
  shrink_attempts : int;  (** Candidate runs the shrinker spent. *)
}

type report = {
  spec : Rio_check.Explorer.spec;
  seed : int;
  trials : int;
  max_ops : int;
  boundaries : int;  (** Summed over trials' full schedules. *)
  violations : int;  (** Trials whose crash broke a contract. *)
  counterexamples : counterexample list;
      (** The first [shrink_limit] violations (trial order), shrunk. *)
  coverage : Rio_cov.Cov.t option;
      (** The campaign's crash-space coverage map ([config.coverage]).
          With coverage on, trials run in fixed rounds and the still-unhit
          boundary classes steer the next round's stratified crash pick —
          deterministic feedback, byte-identical at any [domains]. *)
}

val default_max_ops : int

val run :
  ?spec:Rio_check.Explorer.spec ->
  ?max_ops:int ->
  ?shrink_limit:int ->
  Rio_harness.Run.config ->
  report
(** [config.trials] random programs of [1..max_ops] ops each, seeded from
    [config.seed]; [scale] and [trace_dir] are unused. [config.coverage]
    turns on the coverage map and the unhit-class feedback loop. *)

val render : report -> string
(** Deterministic plain text: a summary head plus one block per shrunk
    counterexample (program listing, crash boundary, problems, trace). *)

val report_json : report -> Rio_util.Json.t
(** Machine-readable report (spec, totals, shrunk counterexamples,
    coverage when collected). Deterministic: byte-identical at any
    [domains]. *)

(** {1 The ablation matrix} *)

type matrix_entry = { entry_report : report; ok : bool }

val max_repro_ops : int
(** A caught ablation only counts if some counterexample shrank to at most
    this many ops (6) — the catch must come with a readable repro. *)

val run_matrix :
  ?specs:Rio_check.Explorer.spec list ->
  ?max_ops:int ->
  ?shrink_limit:int ->
  Rio_harness.Run.config ->
  matrix_entry list
(** Fuzz each spec with the same config. Safe specs must fuzz clean;
    unsafe specs must be caught {e and} shrunk (see {!max_repro_ops}). *)

val matrix_ok : matrix_entry list -> bool

val matrix_json : matrix_entry list -> Rio_util.Json.t
(** One entry per configuration: its verdict plus {!report_json}. *)

val render_matrix : matrix_entry list -> string

(** {1 Multi-task fuzzing: interleaving x crash-point schedules}

    The same trial cycle, with the programs run as {!Rio_task.Sched}
    fibers: one program per task over a disjoint subtree, every boundary
    a preemption point (and every scheduler lock event a boundary), the
    crash tripped at a stratified pick over the {e interleaved} schedule,
    and the audit per task ({!Program.check_tasks} — completed ops exact,
    the in-flight op under its atomicity contract, bystanders exact).
    Trials are pure functions of (spec, locking, seed, trial index), so
    reports stay byte-identical at any [domains]. [locking:false] is the
    planted lost-update ablation: mutating syscalls skip the ownership
    lock, and the interleaving fuzzer must catch the torn metadata it
    produces. *)

type tattempt = {
  t_boundaries : int;
  t_labels : string list;
  t_bounds : (int * int) array array;
      (** [t_bounds.(i).(k)] = boundary-ordinal range [\[start, stop)] of
          task [i]'s op [k]; [-1] where the op never started/finished. *)
  t_progress : Program.progress array;
  t_crasher : (int * int) option;  (** [(task, op)] whose boundary tripped. *)
  t_raised : (int * int * string) option;
      (** A fiber raised [Fs_error] mid-run (an ablation symptom). *)
  t_tripped : string option;
  t_problems : string list;
}

val run_attempt_tasks :
  ?obs:Rio_obs.Trace.t ->
  spec:Rio_check.Explorer.spec ->
  locking:bool ->
  seed:int ->
  sched_seed:int ->
  progs:Rio_workload.Script.Gen.op list array ->
  trip:int ->
  unit ->
  tattempt
(** Build a fresh world, run one program per task under the seeded
    scheduler, crash at boundary [trip] ([-1] = count only, with a
    final-state audit), recover and audit per task. Raises
    {!Invalid_program} when some program is not self-contained. *)

val total_ops : Rio_workload.Script.Gen.op list array -> int
val nonempty_tasks : Rio_workload.Script.Gen.op list array -> int

val shrink_tasks :
  spec:Rio_check.Explorer.spec ->
  locking:bool ->
  world_seed:int ->
  sched_seed:int ->
  progs:Rio_workload.Script.Gen.op list array ->
  ordinal:int option ->
  crasher:(int * int) option ->
  Rio_workload.Script.Gen.op list array * int option * int
(** [(progs', ordinal', attempts)] — a locally minimal failing multi-task
    (programs, boundary) pair: whole bystander tasks emptied, single ops
    dropped, the ordinal walked down. Every candidate re-counts the
    schedule (removing ops changes the interleaving) and remaps the
    ordinal into the crasher op's new boundary window. [ordinal = None]
    is the no-crash flavor (the interleaving alone fails the audit). *)

type tcounterexample = {
  tc_trial : int;
  tc_original_ops : int;
  tc_progs : Rio_workload.Script.Gen.op list array;
  tc_sched_seed : int;
  tc_ordinal : int option;
  tc_crasher : (int * int) option;
  tc_label : string option;
  tc_problems : string list;
  tc_shrink_attempts : int;
}

type treport = {
  tr_spec : Rio_check.Explorer.spec;
  tr_locking : bool;
  tr_seed : int;
  tr_tasks : int;
  tr_trials : int;
  tr_max_ops : int;
  tr_boundaries : int;
  tr_violations : int;
  tr_counterexamples : tcounterexample list;
  tr_coverage : Rio_cov.Cov.t option;
}

val run_tasks :
  ?spec:Rio_check.Explorer.spec ->
  ?locking:bool ->
  ?max_ops:int ->
  ?shrink_limit:int ->
  tasks:int ->
  Rio_harness.Run.config ->
  treport
(** [config.trials] multi-task trials ([tasks] programs of
    [1..max_ops] ops each), seeded from [config.seed]. [config.coverage]
    turns on the coverage map — now with the task-role axis
    (crasher/bystander) — and the unhit-class feedback loop. *)

val render_tasks : treport -> string
(** Deterministic plain text, byte-identical at any [domains]. *)

val treport_json : treport -> Rio_util.Json.t

val tasks_caught : treport -> bool
(** The ablation acceptance bar: some counterexample shrank to at most
    {!max_repro_ops} total ops over at most two non-empty tasks. *)
