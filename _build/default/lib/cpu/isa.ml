type reg = int

type t =
  | Nop
  | Halt
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Sll of reg * reg * reg
  | Srl of reg * reg * reg
  | Mul of reg * reg * reg
  | Slt of reg * reg * reg
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Slti of reg * reg * int
  | Lui of reg * int
  | Kseg of reg * reg
  | Ld of reg * reg * int
  | St of reg * reg * int
  | Ldw of reg * reg * int
  | Stw of reg * reg * int
  | Ldb of reg * reg * int
  | Stb of reg * reg * int
  | Beq of reg * reg * int
  | Bne of reg * reg * int
  | Blt of reg * reg * int
  | Bge of reg * reg * int
  | Jmp of int
  | Jal of reg * int
  | Jr of reg
  | Assert_nz of reg * int

let word_bytes = 4

(* Field packing: op:0-5, rd:6-10, rs1:11-15, rs2:16-20, imm11:21-31.
   I-format immediates occupy bits 16-31 (16 bits, signed except Assert). *)

let pack_r op rd rs1 rs2 = op lor (rd lsl 6) lor (rs1 lsl 11) lor (rs2 lsl 16)

let pack_i op rd rs1 imm = op lor (rd lsl 6) lor (rs1 lsl 11) lor ((imm land 0xFFFF) lsl 16)

let encode = function
  | Nop -> pack_r 0 0 0 0
  | Halt -> pack_r 1 0 0 0
  | Add (rd, rs1, rs2) -> pack_r 2 rd rs1 rs2
  | Sub (rd, rs1, rs2) -> pack_r 3 rd rs1 rs2
  | And (rd, rs1, rs2) -> pack_r 4 rd rs1 rs2
  | Or (rd, rs1, rs2) -> pack_r 5 rd rs1 rs2
  | Xor (rd, rs1, rs2) -> pack_r 6 rd rs1 rs2
  | Sll (rd, rs1, rs2) -> pack_r 7 rd rs1 rs2
  | Srl (rd, rs1, rs2) -> pack_r 8 rd rs1 rs2
  | Mul (rd, rs1, rs2) -> pack_r 9 rd rs1 rs2
  | Slt (rd, rs1, rs2) -> pack_r 10 rd rs1 rs2
  | Addi (rd, rs1, imm) -> pack_i 11 rd rs1 imm
  | Andi (rd, rs1, imm) -> pack_i 12 rd rs1 imm
  | Ori (rd, rs1, imm) -> pack_i 13 rd rs1 imm
  | Xori (rd, rs1, imm) -> pack_i 14 rd rs1 imm
  | Slti (rd, rs1, imm) -> pack_i 15 rd rs1 imm
  | Lui (rd, imm) -> pack_i 16 rd 0 imm
  | Kseg (rd, rs1) -> pack_r 17 rd rs1 0
  | Ld (rd, rs1, imm) -> pack_i 18 rd rs1 imm
  | St (rd, rs1, imm) -> pack_i 19 rd rs1 imm
  | Ldw (rd, rs1, imm) -> pack_i 20 rd rs1 imm
  | Stw (rd, rs1, imm) -> pack_i 21 rd rs1 imm
  | Ldb (rd, rs1, imm) -> pack_i 22 rd rs1 imm
  | Stb (rd, rs1, imm) -> pack_i 23 rd rs1 imm
  | Beq (ra, rb, off) -> pack_i 24 ra rb off
  | Bne (ra, rb, off) -> pack_i 25 ra rb off
  | Blt (ra, rb, off) -> pack_i 26 ra rb off
  | Bge (ra, rb, off) -> pack_i 27 ra rb off
  | Jmp off -> pack_i 28 0 0 off
  | Jal (rd, off) -> pack_i 29 rd 0 off
  | Jr rs1 -> pack_r 30 0 rs1 0
  | Assert_nz (rs1, msg) -> pack_i 31 0 rs1 msg

let sign16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let decode word =
  if word < 0 || word > 0xFFFF_FFFF then None
  else begin
    let op = word land 0x3F in
    let rd = (word lsr 6) land 0x1F in
    let rs1 = (word lsr 11) land 0x1F in
    let rs2 = (word lsr 16) land 0x1F in
    let imm11 = (word lsr 21) land 0x7FF in
    let imm = sign16 ((word lsr 16) land 0xFFFF) in
    let uimm = (word lsr 16) land 0xFFFF in
    let r_type make =
      (* R-format requires the unused immediate bits to be zero, like real
         ISAs' function-code fields: a flipped high bit is illegal. *)
      if imm11 = 0 then Some (make ()) else None
    in
    match op with
    | 0 -> if rd = 0 && rs1 = 0 && rs2 = 0 && imm11 = 0 then Some Nop else None
    | 1 -> if rd = 0 && rs1 = 0 && rs2 = 0 && imm11 = 0 then Some Halt else None
    | 2 -> r_type (fun () -> Add (rd, rs1, rs2))
    | 3 -> r_type (fun () -> Sub (rd, rs1, rs2))
    | 4 -> r_type (fun () -> And (rd, rs1, rs2))
    | 5 -> r_type (fun () -> Or (rd, rs1, rs2))
    | 6 -> r_type (fun () -> Xor (rd, rs1, rs2))
    | 7 -> r_type (fun () -> Sll (rd, rs1, rs2))
    | 8 -> r_type (fun () -> Srl (rd, rs1, rs2))
    | 9 -> r_type (fun () -> Mul (rd, rs1, rs2))
    | 10 -> r_type (fun () -> Slt (rd, rs1, rs2))
    | 11 -> Some (Addi (rd, rs1, imm))
    | 12 -> Some (Andi (rd, rs1, imm))
    | 13 -> Some (Ori (rd, rs1, imm))
    | 14 -> Some (Xori (rd, rs1, imm))
    | 15 -> Some (Slti (rd, rs1, imm))
    | 16 -> if rs1 = 0 then Some (Lui (rd, imm)) else None
    | 17 -> r_type (fun () -> Kseg (rd, rs1))
    | 18 -> Some (Ld (rd, rs1, imm))
    | 19 -> Some (St (rd, rs1, imm))
    | 20 -> Some (Ldw (rd, rs1, imm))
    | 21 -> Some (Stw (rd, rs1, imm))
    | 22 -> Some (Ldb (rd, rs1, imm))
    | 23 -> Some (Stb (rd, rs1, imm))
    | 24 -> Some (Beq (rd, rs1, imm))
    | 25 -> Some (Bne (rd, rs1, imm))
    | 26 -> Some (Blt (rd, rs1, imm))
    | 27 -> Some (Bge (rd, rs1, imm))
    | 28 -> if rd = 0 && rs1 = 0 then Some (Jmp imm) else None
    | 29 -> if rs1 = 0 then Some (Jal (rd, imm)) else None
    | 30 -> if rd = 0 && rs2 = 0 && imm11 = 0 then Some (Jr rs1) else None
    | 31 -> if rd = 0 then Some (Assert_nz (rs1, uimm)) else None
    | _ -> None
  end

let is_store = function
  | St (_, _, _) | Stw (_, _, _) | Stb (_, _, _) -> true
  | Nop | Halt
  | Add (_, _, _) | Sub (_, _, _) | And (_, _, _) | Or (_, _, _) | Xor (_, _, _)
  | Sll (_, _, _) | Srl (_, _, _) | Mul (_, _, _) | Slt (_, _, _)
  | Addi (_, _, _) | Andi (_, _, _) | Ori (_, _, _) | Xori (_, _, _) | Slti (_, _, _)
  | Lui (_, _) | Kseg (_, _)
  | Ld (_, _, _) | Ldw (_, _, _) | Ldb (_, _, _)
  | Beq (_, _, _) | Bne (_, _, _) | Blt (_, _, _) | Bge (_, _, _)
  | Jmp _ | Jal (_, _) | Jr _ | Assert_nz (_, _) -> false

let is_branch = function
  | Beq (_, _, _) | Bne (_, _, _) | Blt (_, _, _) | Bge (_, _, _) | Jmp _ | Jal (_, _) | Jr _ ->
    true
  | Nop | Halt
  | Add (_, _, _) | Sub (_, _, _) | And (_, _, _) | Or (_, _, _) | Xor (_, _, _)
  | Sll (_, _, _) | Srl (_, _, _) | Mul (_, _, _) | Slt (_, _, _)
  | Addi (_, _, _) | Andi (_, _, _) | Ori (_, _, _) | Xori (_, _, _) | Slti (_, _, _)
  | Lui (_, _) | Kseg (_, _)
  | Ld (_, _, _) | St (_, _, _) | Ldw (_, _, _) | Stw (_, _, _) | Ldb (_, _, _) | Stb (_, _, _)
  | Assert_nz (_, _) -> false

let reads = function
  | Nop | Halt | Lui (_, _) | Jmp _ | Jal (_, _) -> []
  | Add (_, a, b) | Sub (_, a, b) | And (_, a, b) | Or (_, a, b) | Xor (_, a, b)
  | Sll (_, a, b) | Srl (_, a, b) | Mul (_, a, b) | Slt (_, a, b) -> [ a; b ]
  | Addi (_, a, _) | Andi (_, a, _) | Ori (_, a, _) | Xori (_, a, _) | Slti (_, a, _)
  | Kseg (_, a) | Ld (_, a, _) | Ldw (_, a, _) | Ldb (_, a, _) -> [ a ]
  | St (v, a, _) | Stw (v, a, _) | Stb (v, a, _) -> [ v; a ]
  | Beq (a, b, _) | Bne (a, b, _) | Blt (a, b, _) | Bge (a, b, _) -> [ a; b ]
  | Jr a | Assert_nz (a, _) -> [ a ]

let writes = function
  | Nop | Halt | Jmp _ | Jr _ | Assert_nz (_, _)
  | St (_, _, _) | Stw (_, _, _) | Stb (_, _, _)
  | Beq (_, _, _) | Bne (_, _, _) | Blt (_, _, _) | Bge (_, _, _) -> None
  | Add (rd, _, _) | Sub (rd, _, _) | And (rd, _, _) | Or (rd, _, _) | Xor (rd, _, _)
  | Sll (rd, _, _) | Srl (rd, _, _) | Mul (rd, _, _) | Slt (rd, _, _)
  | Addi (rd, _, _) | Andi (rd, _, _) | Ori (rd, _, _) | Xori (rd, _, _) | Slti (rd, _, _)
  | Lui (rd, _) | Kseg (rd, _) | Ld (rd, _, _) | Ldw (rd, _, _) | Ldb (rd, _, _)
  | Jal (rd, _) -> Some rd

let with_rd instr rd =
  match instr with
  | Add (_, a, b) -> Add (rd, a, b)
  | Sub (_, a, b) -> Sub (rd, a, b)
  | And (_, a, b) -> And (rd, a, b)
  | Or (_, a, b) -> Or (rd, a, b)
  | Xor (_, a, b) -> Xor (rd, a, b)
  | Sll (_, a, b) -> Sll (rd, a, b)
  | Srl (_, a, b) -> Srl (rd, a, b)
  | Mul (_, a, b) -> Mul (rd, a, b)
  | Slt (_, a, b) -> Slt (rd, a, b)
  | Addi (_, a, i) -> Addi (rd, a, i)
  | Andi (_, a, i) -> Andi (rd, a, i)
  | Ori (_, a, i) -> Ori (rd, a, i)
  | Xori (_, a, i) -> Xori (rd, a, i)
  | Slti (_, a, i) -> Slti (rd, a, i)
  | Lui (_, i) -> Lui (rd, i)
  | Kseg (_, a) -> Kseg (rd, a)
  | Ld (_, a, i) -> Ld (rd, a, i)
  | Ldw (_, a, i) -> Ldw (rd, a, i)
  | Ldb (_, a, i) -> Ldb (rd, a, i)
  | Jal (_, i) -> Jal (rd, i)
  | St (_, a, i) -> St (rd, a, i) (* store: rd is the value source *)
  | Stw (_, a, i) -> Stw (rd, a, i)
  | Stb (_, a, i) -> Stb (rd, a, i)
  | (Nop | Halt | Jmp _ | Jr _ | Assert_nz (_, _)
    | Beq (_, _, _) | Bne (_, _, _) | Blt (_, _, _) | Bge (_, _, _)) as i -> i

let with_rs1 instr rs1 =
  match instr with
  | Add (d, _, b) -> Add (d, rs1, b)
  | Sub (d, _, b) -> Sub (d, rs1, b)
  | And (d, _, b) -> And (d, rs1, b)
  | Or (d, _, b) -> Or (d, rs1, b)
  | Xor (d, _, b) -> Xor (d, rs1, b)
  | Sll (d, _, b) -> Sll (d, rs1, b)
  | Srl (d, _, b) -> Srl (d, rs1, b)
  | Mul (d, _, b) -> Mul (d, rs1, b)
  | Slt (d, _, b) -> Slt (d, rs1, b)
  | Addi (d, _, i) -> Addi (d, rs1, i)
  | Andi (d, _, i) -> Andi (d, rs1, i)
  | Ori (d, _, i) -> Ori (d, rs1, i)
  | Xori (d, _, i) -> Xori (d, rs1, i)
  | Slti (d, _, i) -> Slti (d, rs1, i)
  | Kseg (d, _) -> Kseg (d, rs1)
  | Ld (d, _, i) -> Ld (d, rs1, i)
  | St (v, _, i) -> St (v, rs1, i)
  | Ldw (d, _, i) -> Ldw (d, rs1, i)
  | Stw (v, _, i) -> Stw (v, rs1, i)
  | Ldb (d, _, i) -> Ldb (d, rs1, i)
  | Stb (v, _, i) -> Stb (v, rs1, i)
  | Beq (a, _, i) -> Beq (a, rs1, i)
  | Bne (a, _, i) -> Bne (a, rs1, i)
  | Blt (a, _, i) -> Blt (a, rs1, i)
  | Bge (a, _, i) -> Bge (a, rs1, i)
  | Jr _ -> Jr rs1
  | Assert_nz (_, m) -> Assert_nz (rs1, m)
  | (Nop | Halt | Lui (_, _) | Jmp _ | Jal (_, _)) as i -> i

let to_string instr =
  let r n = Printf.sprintf "r%d" n in
  match instr with
  | Nop -> "nop"
  | Halt -> "halt"
  | Add (d, a, b) -> Printf.sprintf "add %s, %s, %s" (r d) (r a) (r b)
  | Sub (d, a, b) -> Printf.sprintf "sub %s, %s, %s" (r d) (r a) (r b)
  | And (d, a, b) -> Printf.sprintf "and %s, %s, %s" (r d) (r a) (r b)
  | Or (d, a, b) -> Printf.sprintf "or %s, %s, %s" (r d) (r a) (r b)
  | Xor (d, a, b) -> Printf.sprintf "xor %s, %s, %s" (r d) (r a) (r b)
  | Sll (d, a, b) -> Printf.sprintf "sll %s, %s, %s" (r d) (r a) (r b)
  | Srl (d, a, b) -> Printf.sprintf "srl %s, %s, %s" (r d) (r a) (r b)
  | Mul (d, a, b) -> Printf.sprintf "mul %s, %s, %s" (r d) (r a) (r b)
  | Slt (d, a, b) -> Printf.sprintf "slt %s, %s, %s" (r d) (r a) (r b)
  | Addi (d, a, i) -> Printf.sprintf "addi %s, %s, %d" (r d) (r a) i
  | Andi (d, a, i) -> Printf.sprintf "andi %s, %s, %d" (r d) (r a) i
  | Ori (d, a, i) -> Printf.sprintf "ori %s, %s, %d" (r d) (r a) i
  | Xori (d, a, i) -> Printf.sprintf "xori %s, %s, %d" (r d) (r a) i
  | Slti (d, a, i) -> Printf.sprintf "slti %s, %s, %d" (r d) (r a) i
  | Lui (d, i) -> Printf.sprintf "lui %s, %d" (r d) i
  | Kseg (d, a) -> Printf.sprintf "kseg %s, %s" (r d) (r a)
  | Ld (d, a, i) -> Printf.sprintf "ld %s, %d(%s)" (r d) i (r a)
  | St (v, a, i) -> Printf.sprintf "st %s, %d(%s)" (r v) i (r a)
  | Ldw (d, a, i) -> Printf.sprintf "ldw %s, %d(%s)" (r d) i (r a)
  | Stw (v, a, i) -> Printf.sprintf "stw %s, %d(%s)" (r v) i (r a)
  | Ldb (d, a, i) -> Printf.sprintf "ldb %s, %d(%s)" (r d) i (r a)
  | Stb (v, a, i) -> Printf.sprintf "stb %s, %d(%s)" (r v) i (r a)
  | Beq (a, b, o) -> Printf.sprintf "beq %s, %s, %d" (r a) (r b) o
  | Bne (a, b, o) -> Printf.sprintf "bne %s, %s, %d" (r a) (r b) o
  | Blt (a, b, o) -> Printf.sprintf "blt %s, %s, %d" (r a) (r b) o
  | Bge (a, b, o) -> Printf.sprintf "bge %s, %s, %d" (r a) (r b) o
  | Jmp o -> Printf.sprintf "jmp %d" o
  | Jal (d, o) -> Printf.sprintf "jal %s, %d" (r d) o
  | Jr a -> Printf.sprintf "jr %s" (r a)
  | Assert_nz (a, m) -> Printf.sprintf "assert %s, #%d" (r a) m

let pp ppf t = Format.pp_print_string ppf (to_string t)
