let summary t =
  Printf.sprintf
    "crash-space coverage: %d crash trials over %d schedules, %d boundaries enumerated, %d violations"
    (Cov.crash_trials t) (Cov.schedules t)
    (Cov.boundaries_enumerated t)
    (Cov.violations t)

(* One grid: rows = label classes, columns from [cols], cell count from
   [count]. Every row carries the per-class totals; the column widths fit
   the widest entry so the grid stays aligned at any count magnitude. *)
let render_grid buf t ~title ~cols ~col_name ~count =
  let classes = Cov.classes t in
  let col_names = List.map col_name cols in
  let cells =
    List.map
      (fun cls -> (cls, List.map (fun c -> count ~cls c) cols))
      classes
  in
  let widths =
    List.map2
      (fun name col_idx ->
        List.fold_left
          (fun w (_, counts) ->
            let v = List.nth counts col_idx in
            max w (String.length (if v = 0 then "." else string_of_int v)))
          (String.length name) cells)
      col_names
      (List.init (List.length cols) Fun.id)
  in
  let class_w =
    List.fold_left (fun w cls -> max w (String.length cls)) (String.length "class") classes
  in
  Buffer.add_string buf (Printf.sprintf "  %s\n" title);
  Buffer.add_string buf (Printf.sprintf "  %-*s" class_w "class");
  List.iter2
    (fun name w -> Buffer.add_string buf (Printf.sprintf "  %*s" w name))
    col_names widths;
  Buffer.add_string buf "  | enumerated crashed violated\n";
  List.iter
    (fun (cls, counts) ->
      Buffer.add_string buf (Printf.sprintf "  %-*s" class_w cls);
      List.iter2
        (fun v w ->
          Buffer.add_string buf
            (Printf.sprintf "  %*s" w (if v = 0 then "." else string_of_int v)))
        counts widths;
      let enumerated = Cov.enumerated_of_class t cls in
      let crashed = Cov.crashed_of_class t cls in
      let violated = Cov.violated_of_class t cls in
      Buffer.add_string buf
        (Printf.sprintf "  | %10d %7d %8d%s\n" enumerated crashed violated
           (if crashed = 0 then "  UNHIT" else "")))
    cells

let render t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (summary t);
  Buffer.add_char buf '\n';
  let buckets = List.init Cov.buckets Fun.id in
  render_grid buf t ~title:"boundary class x crash-ordinal bucket (crash trials; '.' = none)"
    ~cols:buckets ~col_name:Cov.bucket_name
    ~count:(fun ~cls bucket -> Cov.cell_by_bucket t ~cls ~bucket);
  Buffer.add_char buf '\n';
  render_grid buf t ~title:"boundary class x operation kind in flight"
    ~cols:(Cov.ops t) ~col_name:Fun.id
    ~count:(fun ~cls op -> Cov.cell_by_op t ~cls ~op);
  (* The task-role axis only says something once a multi-task campaign
     recorded crasher/bystander cells; single-task maps stay as before. *)
  let task_roles = Cov.tasks t in
  if task_roles <> [] && task_roles <> [ "solo" ] then begin
    Buffer.add_char buf '\n';
    render_grid buf t ~title:"boundary class x task role at the crash"
      ~cols:task_roles ~col_name:Fun.id
      ~count:(fun ~cls task -> Cov.cell_by_task t ~cls ~task)
  end;
  let unhit = Cov.unhit_classes t in
  Buffer.add_string buf
    (match unhit with
    | [] -> "  unhit label classes: none\n"
    | classes ->
      Printf.sprintf "  unhit label classes: %s\n" (String.concat ", " classes));
  Buffer.contents buf
