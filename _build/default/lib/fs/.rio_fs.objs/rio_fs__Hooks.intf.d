lib/fs/hooks.mli: Fs_types Rio_mem
