lib/fs/block_cache.ml: Format Fs_types Hashtbl Hooks List Rio_disk Rio_mem
