lib/harness/reliability.mli: Rio_fault Rio_util
