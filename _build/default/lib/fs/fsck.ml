open Fs_types
module Disk = Rio_disk.Disk

type report = {
  repairs : string list;
  unrecoverable : bool;
}

let clean r = r.repairs = [] && not r.unrecoverable

let pp_report ppf r =
  if r.unrecoverable then Format.fprintf ppf "fsck: volume unrecoverable"
  else if r.repairs = [] then Format.fprintf ppf "fsck: clean"
  else begin
    Format.fprintf ppf "fsck: %d repairs:@." (List.length r.repairs);
    List.iter (fun s -> Format.fprintf ppf "  %s@." s) r.repairs
  end

(* Bitmap helpers over a byte array (one bit per object). *)
let bit_get bm i = Char.code (Bytes.get bm (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set bm i v =
  let byte = Char.code (Bytes.get bm (i / 8)) in
  let mask = 1 lsl (i mod 8) in
  Bytes.set bm (i / 8) (Char.chr (if v then byte lor mask else byte land lnot mask))

let read_sectors disk ~sector ~count =
  let b = Bytes.create (count * Disk.sector_bytes) in
  for i = 0 to count - 1 do
    let s = Disk.peek disk ~sector:(sector + i) in
    Bytes.blit s 0 b (i * Disk.sector_bytes) Disk.sector_bytes
  done;
  b

let write_sectors disk ~sector data =
  let count = (Bytes.length data + Disk.sector_bytes - 1) / Disk.sector_bytes in
  for i = 0 to count - 1 do
    let chunk = Bytes.make Disk.sector_bytes '\000' in
    let len = min Disk.sector_bytes (Bytes.length data - (i * Disk.sector_bytes)) in
    Bytes.blit data (i * Disk.sector_bytes) chunk 0 len;
    Disk.poke disk ~sector:(sector + i) chunk
  done

let run ~disk =
  let repairs = ref [] in
  let repair fmt = Printf.ksprintf (fun s -> repairs := s :: !repairs) fmt in
  match Ondisk.read_superblock (Disk.peek disk ~sector:Ondisk.superblock_sector) with
  | exception Fs_error msg ->
    { repairs = [ Printf.sprintf "superblock: %s" msg ]; unrecoverable = true }
  | sb ->
    let ibitmap = read_sectors disk ~sector:sb.ibitmap_start ~count:sb.ibitmap_sectors in
    let bbitmap = read_sectors disk ~sector:sb.bbitmap_start ~count:sb.bbitmap_sectors in
    (* Pass 1: parse allocated inodes; free the undecodable. *)
    let inodes = Hashtbl.create 64 in
    for ino = 1 to sb.inode_count do
      if bit_get ibitmap (ino - 1) then begin
        let sector = Ondisk.inode_sector sb ino in
        let raw = Disk.peek disk ~sector in
        if Ondisk.inode_is_free raw ~pos:0 then begin
          repair "inode %d: allocated in bitmap but slot is free; bitmap cleared" ino;
          bit_set ibitmap (ino - 1) false
        end
        else
          match Ondisk.read_inode raw ~pos:0 with
          | inode -> Hashtbl.replace inodes ino inode
          | exception Fs_error msg ->
            repair "inode %d: undecodable (%s); freed" ino msg;
            bit_set ibitmap (ino - 1) false;
            write_sectors disk ~sector (Ondisk.free_inode_image ())
      end
    done;
    (* Pass 2: validate block pointers; clear bad and doubly-claimed ones. *)
    let claims = Hashtbl.create 256 in
    let touched = Hashtbl.create 64 in
    let note_touched ino = Hashtbl.replace touched ino () in
    Hashtbl.iter
      (fun ino (inode : Ondisk.inode) ->
        Array.iteri
          (fun slot ptr ->
            if ptr <> 0 then begin
              let blkno = ptr - 1 in
              if blkno < 0 || blkno >= sb.data_blocks then begin
                repair "inode %d: block pointer %d out of range; cleared" ino slot;
                inode.Ondisk.blocks.(slot) <- 0;
                note_touched ino
              end
              else
                match Hashtbl.find_opt claims blkno with
                | Some first ->
                  repair "inode %d: block %d already claimed by inode %d; cleared" ino blkno
                    first;
                  inode.Ondisk.blocks.(slot) <- 0;
                  note_touched ino
                | None -> Hashtbl.replace claims blkno ino
            end)
          inode.Ondisk.blocks)
      inodes;
    (* Pass 3: walk the directory tree from the root. *)
    let reachable = Hashtbl.create 64 in
    (match Hashtbl.find_opt inodes root_ino with
    | Some inode when inode.Ondisk.ftype = Directory -> ()
    | _ ->
      repair "root inode missing or not a directory; recreated empty";
      let root = Ondisk.empty_inode Directory in
      root.Ondisk.nlink <- 1;
      Hashtbl.replace inodes root_ino root;
      bit_set ibitmap (root_ino - 1) true;
      note_touched root_ino);
    let link_counts = Hashtbl.create 64 in
    let count_link ino =
      Hashtbl.replace link_counts ino (1 + Option.value ~default:0 (Hashtbl.find_opt link_counts ino))
    in
    let rec walk ino =
      if not (Hashtbl.mem reachable ino) then begin
        Hashtbl.replace reachable ino ();
        match Hashtbl.find_opt inodes ino with
        | Some inode when inode.Ondisk.ftype = Directory ->
          let nblocks = (inode.Ondisk.size + block_bytes - 1) / block_bytes in
          for bi = 0 to nblocks - 1 do
            let ptr = if bi < ndirect then inode.Ondisk.blocks.(bi) else 0 in
            if ptr <> 0 then begin
              let sector = Ondisk.data_sector sb (ptr - 1) in
              let raw = read_sectors disk ~sector ~count:sectors_per_block in
              let entries =
                match Ondisk.dir_unpack raw ~pos:0 ~len:block_bytes with
                | entries -> entries
                | exception Fs_error msg ->
                  repair "directory %d block %d: corrupt (%s); truncated" ino bi msg;
                  write_sectors disk ~sector (Ondisk.dir_pack []);
                  []
              in
              let surviving =
                List.filter
                  (fun (name, child) ->
                    if child < 1 || child > sb.inode_count || not (Hashtbl.mem inodes child)
                    then begin
                      repair "directory %d: entry %S points to dead inode %d; dropped" ino name
                        child;
                      false
                    end
                    else true)
                  entries
              in
              if List.length surviving <> List.length entries then
                write_sectors disk ~sector (Ondisk.dir_pack surviving);
              List.iter (fun (_, child) -> count_link child) surviving;
              List.iter (fun (_, child) -> walk child) surviving
            end
          done
        | Some _ | None -> ()
      end
    in
    walk root_ino;
    (* Pass 4: free unreachable inodes. *)
    let orphans =
      Hashtbl.fold (fun ino _ acc -> if Hashtbl.mem reachable ino then acc else ino :: acc)
        inodes []
    in
    List.iter
      (fun ino ->
        repair "inode %d: unreachable; freed" ino;
        Hashtbl.remove inodes ino;
        bit_set ibitmap (ino - 1) false;
        write_sectors disk ~sector:(Ondisk.inode_sector sb ino) (Ondisk.free_inode_image ()))
      (List.sort compare orphans);
    (* Pass 4b: correct link counts against the directory walk. *)
    Hashtbl.iter
      (fun ino (inode : Ondisk.inode) ->
        if Hashtbl.mem reachable ino && ino <> root_ino then begin
          let actual = Option.value ~default:0 (Hashtbl.find_opt link_counts ino) in
          if actual > 0 && inode.Ondisk.nlink <> actual then begin
            repair "inode %d: link count %d should be %d; corrected" ino inode.Ondisk.nlink
              actual;
            inode.Ondisk.nlink <- actual;
            note_touched ino
          end
        end)
      inodes;
    (* Pass 5: rebuild the block bitmap from surviving inodes. *)
    let should = Bytes.make (Bytes.length bbitmap) '\000' in
    Hashtbl.iter
      (fun ino (inode : Ondisk.inode) ->
        if Hashtbl.mem reachable ino then
          Array.iter (fun ptr -> if ptr <> 0 then bit_set should (ptr - 1) true)
            inode.Ondisk.blocks)
      inodes;
    let mismatches = ref 0 in
    for b = 0 to sb.data_blocks - 1 do
      if bit_get bbitmap b <> bit_get should b then incr mismatches
    done;
    if !mismatches > 0 then begin
      repair "block bitmap: %d blocks corrected" !mismatches;
      Bytes.blit should 0 bbitmap 0 (Bytes.length bbitmap)
    end;
    (* Write back repaired state and mark the volume clean. *)
    Hashtbl.iter
      (fun ino () ->
        match Hashtbl.find_opt inodes ino with
        | Some inode ->
          let img = Bytes.make Ondisk.inode_bytes '\000' in
          Ondisk.write_inode inode img ~pos:0;
          write_sectors disk ~sector:(Ondisk.inode_sector sb ino) img
        | None -> ())
      touched;
    write_sectors disk ~sector:sb.ibitmap_start ibitmap;
    write_sectors disk ~sector:sb.bbitmap_start bbitmap;
    write_sectors disk ~sector:Ondisk.superblock_sector
      (Ondisk.write_superblock { sb with Ondisk.clean = true });
    { repairs = List.rev !repairs; unrecoverable = false }
