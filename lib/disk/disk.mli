(** The simulated disk: a sector store with an early-90s SCSI timing model.

    Requests are serviced FIFO against the {!Rio_sim.Engine} clock.
    Synchronous operations advance the clock until their completion (this is
    what makes write-through file systems slow); asynchronous writes occupy
    the disk in the background and only *commit to the platter* at their
    completion time — a crash before that point loses them, and tears the
    sector that was under the head (paper §2.1: disks share the
    being-written vulnerability). *)

type t

type stats = {
  reads : int;
  writes : int;
  sectors_read : int;
  sectors_written : int;
  seeks : int;
  busy_us : int;
}

val sector_bytes : int
(** 512. *)

val create :
  ?backend:Backend.kind ->
  engine:Rio_sim.Engine.t ->
  costs:Rio_sim.Costs.t ->
  sectors:int ->
  seed:int ->
  unit ->
  t
(** A zero-filled disk of [sectors] sectors, [?backend] defaulting to
    {!Backend.Scsi}. The seed drives SCSI torn-write garbage so crash
    tests replay deterministically (the NVMM tear model draws no
    randomness). *)

val backend : t -> Backend.kind

val capacity_sectors : t -> int

val engine : t -> Rio_sim.Engine.t

val set_on_complete : t -> (sector:int -> count:int -> write:bool -> unit) -> unit
(** Install a request-completion callback (default: ignore). It fires when
    a request's data is committed to the platter: at the completion event
    of an asynchronous write, and at the blocking return of a synchronous
    read or write. The crash-schedule checker crashes at each completion
    by raising from here; {!peek}/{!poke} never trigger it. *)

(** {1 Immediate (un-timed) access}

    Used by boot-time loading and by the test harness to inspect the
    platter; charges no simulated time and bypasses the queue. *)

val peek : t -> sector:int -> bytes
(** Copy of one sector's committed contents. *)

val poke : t -> sector:int -> bytes -> unit
(** Write one sector directly (length <= 512; padded with zeros). *)

(** {1 Timed access} *)

val read_sync : t -> sector:int -> count:int -> bytes
(** Read [count] contiguous sectors, advancing the clock by queueing plus
    service time. *)

val write_sync : t -> sector:int -> bytes -> unit
(** Write contiguous sectors synchronously (length padded to a whole number
    of sectors); the clock advances to completion — data is then
    crash-safe. *)

val write_zeros_sync : t -> sector:int -> count:int -> unit
(** [write_sync] of [count] sectors of zeros, without the buffer:
    identical simulated timing, trace events, statistics, and completion
    callback; the host-side commit just drops any stored entries in the
    range (absent sectors read as zeros). The warm-reboot swap dump uses
    this for chunks the memory snapshot proves are all-zero. *)

val write_async : t -> sector:int -> bytes -> unit
(** Queue a write and return immediately. The data commits to the platter
    when the disk gets to it; until then a crash discards it. *)

val drain : t -> unit
(** Advance the clock until all queued writes have committed ([sync]'s
    disk-side half). *)

val pending_writes : t -> int

val crash : t -> unit
(** Lose all uncommitted queued writes. The request under the head (if any)
    commits a prefix of its sectors and tears the sector it was writing. *)

val stats : t -> stats

val reset_stats : t -> unit

val check_invariant : t -> unit
(** Audit that the per-sector [nonzero] bitmap exactly matches the platter
    entries (see {!Store.check_invariant}).
    @raise Failure describing the first drifted sector found. *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Deep-copy the platter contents and remember the backend mechanism
    state (SCSI head position + tear-pattern PRNG, NVMM log tail) and
    statistics. The request queue must be empty: an async write still
    queued at freeze time would be silently lost by the rewind, so
    @raise Invalid_argument on a non-empty queue — callers drain first. *)

val restore : t -> checkpoint -> unit
(** Rewind the disk to a checkpoint, dropping any queued requests (their
    completion events are assumed cleared with the engine queue).
    @raise Invalid_argument if the checkpoint was taken on a different
    backend. *)

val pp_stats : Format.formatter -> stats -> unit
