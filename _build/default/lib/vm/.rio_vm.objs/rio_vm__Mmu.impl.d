lib/vm/mmu.ml: Format Page_table Pte Rio_mem Tlb
