lib/fs/hooks.ml: Bytes Fs_types Rio_mem
