module Trace = Rio_obs.Trace

type t = {
  mutable clock : int;
  queue : (t -> unit) Event_queue.t;
  obs : Trace.t;
  c_dispatches : Trace.counter;
  c_advances : Trace.counter;
  h_queue_depth : Trace.histogram;
  mutable advances : int;
}

type handle = Event_queue.handle

let create ?(obs = Trace.null) () =
  let t =
    {
      clock = 0;
      queue = Event_queue.create ();
      obs;
      c_dispatches = Trace.counter obs "engine.dispatches";
      c_advances = Trace.counter obs "engine.clock_advances";
      h_queue_depth = Trace.histogram obs "engine.queue_depth";
      advances = 0;
    }
  in
  (* The engine's clock is the recorder's time base. *)
  Trace.set_clock obs (fun () -> t.clock);
  t

let obs t = t.obs

let now t = t.clock

let schedule_at t ~time f = Event_queue.push t.queue ~time:(max time t.clock) f

let schedule_after t ~delay f =
  assert (delay >= 0);
  Event_queue.push t.queue ~time:(t.clock + delay) f

let cancel t handle = Event_queue.cancel t.queue handle

(* Sample the clock-advance counter sparsely: one event per 4096 advances
   (and one on the very first), so a trace always carries engine events
   without recording every advance. *)
let note_advance t =
  if Trace.enabled t.obs then begin
    t.advances <- t.advances + 1;
    Trace.incr t.c_advances;
    if t.advances land 4095 = 1 then
      Trace.emit t.obs Trace.Engine (Trace.Clock { advances = t.advances })
  end

let dispatch t time f =
  t.clock <- max t.clock time;
  if Trace.enabled t.obs then begin
    let depth = Event_queue.length t.queue in
    let start = t.clock in
    f t;
    Trace.incr t.c_dispatches;
    Trace.observe t.h_queue_depth depth;
    Trace.emit t.obs Trace.Engine
      (Trace.Dispatch { due_us = start; end_us = t.clock; queue_depth = depth })
  end
  else f t

let fire_due t target =
  let rec loop () =
    match Event_queue.pop_until t.queue ~time:target with
    | None -> ()
    | Some (time, f) ->
      dispatch t time f;
      loop ()
  in
  loop ()

let advance_to t target =
  if target > t.clock then begin
    fire_due t target;
    t.clock <- max t.clock target;
    note_advance t
  end

let advance_by t delta =
  assert (delta >= 0);
  advance_to t (t.clock + delta)

let run_next t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    dispatch t time f;
    true

let run_until_idle t = while run_next t do () done

let pending t = Event_queue.length t.queue

(* ---- world-template rewind ----

   A checkpoint remembers the clock; restoring rewinds it and drops every
   pending event. Callbacks cannot be replayed (their closures capture
   state from the old timeline), so template freezes are taken when the
   queue is empty and the restore simply clears whatever the discarded
   timeline had scheduled. *)

type checkpoint = { ck_clock : int; ck_advances : int }

let checkpoint t = { ck_clock = t.clock; ck_advances = t.advances }

let restore t ck =
  Event_queue.clear t.queue;
  t.clock <- ck.ck_clock;
  t.advances <- ck.ck_advances
