lib/mem/page_alloc.mli: Layout Phys_mem
