module Prng = Rio_util.Prng

type t = {
  scripts : Script.op list list;
}

(* One developer "action": a burst of think/compute time plus a few file
   operations in the script's own directory. *)
let action prng dir live counter =
  let fresh () =
    incr counter;
    Printf.sprintf "%s/work%d" dir !counter
  in
  let pick () =
    match !live with
    | [] -> None
    | files -> Some (List.nth files (Prng.int prng (List.length files)))
  in
  let roll = Prng.int prng 100 in
  if roll < 30 || !live = [] then begin
    (* Write a new source file. *)
    let path = fresh () in
    live := path :: !live;
    let len = Prng.int_in prng 1024 16_384 in
    Script.Cpu (Prng.int_in prng 2_000 7_000) :: Script.write_file_ops path ~seed:!counter ~len
  end
  else if roll < 55 then begin
    (* Edit: read, think, rewrite. *)
    match pick () with
    | None -> []
    | Some path ->
      let len = Prng.int_in prng 1024 16_384 in
      (Script.Read_whole path :: Script.Cpu (Prng.int_in prng 3_000 10_000)
      :: Script.write_file_ops path ~seed:(Prng.int prng 100000) ~len)
  end
  else if roll < 70 then begin
    (* Compile: CPU plus a derived object file. *)
    match pick () with
    | None -> []
    | Some path ->
      Script.Cpu (Prng.int_in prng 5_000 20_000)
      :: Script.write_file_ops (path ^ ".o") ~seed:(Prng.int prng 100000)
           ~len:(Prng.int_in prng 512 8_192)
  end
  else if roll < 85 then begin
    (* Search/list the work directory. *)
    match pick () with
    | None -> [ Script.Stat dir ]
    | Some path -> [ Script.Stat dir; Script.Read_whole path; Script.Cpu 2_000 ]
  end
  else begin
    (* Clean up. *)
    match pick () with
    | None -> []
    | Some path ->
      live := List.filter (fun p -> p <> path) !live;
      [ Script.Unlink path ]
  end

let build_script prng dir n_actions =
  let live = ref [] and counter = ref 0 in
  let rec build n acc =
    if n = 0 then List.concat (List.rev acc)
    else build (n - 1) (action prng dir live counter :: acc)
  in
  Script.Mkdir dir :: build n_actions []

let create ?(scripts = 5) ?(ops_per_script = 1200) ?(seed = 33) () =
  let prng = Prng.create ~seed in
  {
    scripts =
      List.init scripts (fun i ->
          build_script (Prng.split prng) (Printf.sprintf "/sdet%d" i) ops_per_script);
  }

let script_count t = List.length t.scripts

let scripts t = t.scripts

let runners t = List.map Script.runner t.scripts

let run t fs = Script.interleave (runners t) fs
