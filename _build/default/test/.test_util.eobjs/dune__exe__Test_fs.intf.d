test/test_fs.mli:
