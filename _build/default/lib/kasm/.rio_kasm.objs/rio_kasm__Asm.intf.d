lib/kasm/asm.mli: Rio_cpu Rio_mem
