(** The interpreted CPU.

    Executes kernel code (assembled {!Isa} instructions living in simulated
    physical memory) against the MMU and physical memory. All the crash
    behaviour Table 1 depends on comes out of this loop:

    - a mutated instruction that forms a wild address faults in the MMU
      ("most errors are first detected by issuing an illegal address",
      §3.3);
    - a wild store that happens to land in a *writable* page silently
      corrupts memory — possibly the file cache;
    - with Rio protection on, a wild store into the file cache raises a
      protection trap instead;
    - a failed [Assert_nz] models the kernel's own consistency checks
      panicking. *)

type trap =
  | Illegal_address of int  (** Unmapped fetch, load, or store address. *)
  | Protection_violation of int
      (** Store hit a write-protected page — Rio's protection mechanism. *)
  | Illegal_instruction of int  (** Undecodable instruction word. *)
  | Consistency_panic of int  (** A kernel [Assert_nz] failed; payload is the message id. *)

type state = Running | Halted | Trapped of trap

type t

val create : mem:Rio_mem.Phys_mem.t -> mmu:Rio_vm.Mmu.t -> t

val mem : t -> Rio_mem.Phys_mem.t
val mmu : t -> Rio_vm.Mmu.t

val pc : t -> int
val set_pc : t -> int -> unit

val reg : t -> int -> int
(** Read register [\[0,31\]]; r0 always reads 0. *)

val set_reg : t -> int -> int -> unit
(** Write a register; writes to r0 are ignored. *)

val sp_reg : int
(** 30 *)

val ra_reg : int
(** 31 *)

val state : t -> state

val instructions_retired : t -> int

val stores_retired : t -> int

val set_on_store : t -> (paddr:int -> width:int -> unit) -> unit
(** Instrumentation hook invoked after every successful store with the
    physical address written (used by corruption tracing and the
    code-patching cost model). *)

val clear_on_store : t -> unit

val step : t -> state
(** Execute one instruction (no-op unless [Running]). *)

val run : t -> max_instructions:int -> state
(** Step until halt, trap, or the instruction budget is exhausted (the
    caller treats budget exhaustion with [Running] still set as a hang). *)

val resume : t -> unit
(** Clear a halt/trap and mark the machine runnable again (used when the
    kernel model handles a trap or reboots). *)

val reset : t -> unit
(** Zero registers and pc, clear state to [Running], reset counters. *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the register file, pc, and run state. The retired-instruction
    counters are monotonic (all callers take deltas) and the decode cache
    is page-version-keyed, so neither needs rewinding. *)

val restore : t -> checkpoint -> unit

val pp_trap : Format.formatter -> trap -> unit

val trap_to_string : trap -> string
