(** Physical memory layout of the simulated machine.

    Mirrors the paper's platform: kernel text / heap / stack (the three
    bit-flip fault targets, §3.1), the traditional buffer cache holding
    metadata (wired, a few MB), the shared {e page pool} holding the Unified
    Buffer Cache's file pages interleaved with large kernel buffers (in a
    real kernel the VM system and UBC trade pages dynamically, §2 — the
    interleaving is what lets a kernel-buffer copy overrun spill into a
    file-cache page), the Rio registry (§2.2), and a page-table area.
    Regions are laid out contiguously from address 0 and the page pool takes
    all remaining space, like the VM/UBC split on the I/O-intensive
    workloads in §2 (80 MB of 128 MB). *)

type region_kind =
  | Kernel_text
  | Kernel_heap
  | Kernel_stack
  | Page_tables
  | Registry
  | Buffer_cache
  | Page_pool

type region = {
  kind : region_kind;
  base : Phys_mem.paddr;
  bytes : int;
}

type config = {
  total_bytes : int;
  text_bytes : int;
  heap_bytes : int;
  stack_bytes : int;
  page_table_bytes : int;
  buffer_cache_bytes : int;
}

type t

val default_config : config
(** A 16 MB machine (scaled from the paper's 128 MB; see DESIGN.md). *)

val paper_config : config
(** The 128 MB DEC 3000/600 with an 80 MB UBC. *)

val create : config -> t
(** Compute the layout. Raises [Invalid_argument] if the fixed regions do
    not leave at least one page for the UBC. The registry is sized
    automatically at 40 bytes per potential file-cache page (buffer cache +
    UBC), rounded up to whole pages. *)

val region : t -> region_kind -> region

val regions : t -> region list
(** In address order. *)

val kind_of_addr : t -> Phys_mem.paddr -> region_kind option
(** Which region an address falls in; [None] past the end of memory. *)

val contains : region -> Phys_mem.paddr -> bool

val file_cache_pages : t -> int
(** Number of 8 KB pages in buffer cache + page pool (the registry's
    capacity). *)

val region_kind_name : region_kind -> string

val pp : Format.formatter -> t -> unit
