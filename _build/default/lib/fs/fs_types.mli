(** Shared file-system constants and basic types. *)

val block_bytes : int
(** 8192 — one file-system block is one physical page. *)

val sectors_per_block : int
(** 16. *)

val ndirect : int
(** Direct block pointers per inode (96 → 768 KB max file size; ample for
    the paper's workloads). *)

val name_max : int
(** Longest directory entry name (60). *)

val root_ino : int
(** 1. Inode 0 is reserved as "no inode". *)

type ftype = Regular | Directory | Symlink

type fid = {
  dev : int;
  ino : int;
}
(** The paper's file id: device number and inode number (§2.2). *)

type owner =
  | Meta  (** A metadata block: inodes, directories, bitmaps, superblock. *)
  | Data of { ino : int; offset : int }
      (** A regular file's data block and its position in the file. *)

exception Fs_error of string
(** Raised on structurally invalid on-disk/in-memory state (bad magic,
    corrupt directory entry, out-of-range block pointer) and on usage errors
    (no such file, not a directory, file exists). *)

val err : ('a, unit, string, 'b) format4 -> 'a
(** [err fmt ...] raises {!Fs_error}. *)

val ftype_name : ftype -> string
