lib/workload/script.mli: Format Rio_fs
