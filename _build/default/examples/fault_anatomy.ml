(* The anatomy of a crash: how each fault type kills the system.

   The paper treated the crashed OS as a black box ("We plan to trace how
   faults propagate to corrupt files and crash the system ... this is
   beyond the scope of this paper", footnote 2). A simulator has no such
   limitation: here we run one crash test per fault type on Rio without
   protection and report, for each crash, what the console said, how long
   the system survived after injection, and how many wild stores landed in
   file-cache pages along the way.

   Run with: dune exec examples/fault_anatomy.exe *)

module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type
module Units = Rio_util.Units

let config =
  {
    Campaign.default_config with
    Campaign.warmup_steps = 25;
    max_steps = 300;
  }

(* First crashing seed for this fault type, so every row shows a real crash. *)
let first_crash fault =
  let rec hunt seed =
    if seed > 120 then None
    else begin
      let o = Campaign.run_one config Campaign.Rio_without_protection fault ~seed in
      if o.Campaign.discarded then hunt (seed + 1) else Some o
    end
  in
  hunt 1

let () =
  Printf.printf "== The anatomy of a crash, by fault type ==\n\n";
  let table =
    Rio_util.Table.create
      ~columns:
        [
          ("Fault type", Rio_util.Table.Left);
          ("Console message at crash", Rio_util.Table.Left);
          ("Survived", Rio_util.Table.Right);
          ("Wild cache stores", Rio_util.Table.Right);
          ("Corrupted?", Rio_util.Table.Left);
        ]
  in
  List.iter
    (fun fault ->
      match first_crash fault with
      | None ->
        Rio_util.Table.add_row table
          [ Fault_type.name fault; "(no crash in 120 attempts)"; ""; ""; "" ]
      | Some o ->
        let survived =
          match o.Campaign.crash with
          | Some info ->
            Format.asprintf "%a" Units.pp_usec (info.Rio_kernel.Kcrash.at_us - o.Campaign.injected_at_us)
          | None -> "?"
        in
        Rio_util.Table.add_row table
          [
            Fault_type.name fault;
            (match o.Campaign.crash_message with Some m -> m | None -> "?");
            survived;
            string_of_int o.Campaign.wild_filecache_stores;
            (if o.Campaign.corrupted then "YES" else "no");
          ])
    Fault_type.all;
  print_string (Rio_util.Table.render table);
  Printf.printf
    "\nReadings:\n\
    \  - most faults die quickly on an illegal address or a kernel consistency\n\
    \    check, before any store reaches the file cache (the paper's \"multitude\n\
    \    of consistency checks ... stop the system very soon\", 3.3);\n\
    \  - \"wild cache stores\" > 0 with no corruption verdict means the wild\n\
    \    store hit a page whose contents memTest later overwrote or deleted;\n\
    \  - copy overruns are the outlier: they write straight into the file\n\
    \    cache, which is exactly why protection matters for them.\n"
