(** Deterministic, cheap file-content patterns.

    Workloads need megabytes of file data whose every byte is predictable
    from a small seed — memTest reconstructs expected contents after a crash
    by regenerating them (§3.2). A multiplicative byte mix is far cheaper
    than running a PRNG per byte and just as checkable. *)

val fill : seed:int -> len:int -> bytes
(** [fill ~seed ~len]: byte [i] is a mix of [seed] and [i]. *)

val fill_at : seed:int -> offset:int -> len:int -> bytes
(** The slice [\[offset, offset+len)] of the infinite pattern stream for
    [seed] — so partial reads can be checked without materializing the whole
    file. [fill ~seed ~len = fill_at ~seed ~offset:0 ~len]. *)

val byte_at : seed:int -> int -> char
(** Single byte of the stream. *)
