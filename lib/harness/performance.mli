(** The Table 2 experiment: run cp+rm, Sdet, and Andrew on each of the
    eight file-system configurations and report simulated seconds.

    Each (configuration, workload) pair gets a fresh 128 MB machine (the
    paper's DEC 3000/600) and a freshly formatted disk. Timing follows the
    paper's method: elapsed time of the command, including disk traffic it
    leaves queued (the next command inherits the queue, as cp's writes slow
    rm down). *)

type configuration = {
  label : string;  (** Matches {!Paper_data.table2} labels. *)
  policy : Rio_fs.Fs.policy;
  rio_protection : bool option;  (** [Some p] mounts a Rio cache. *)
}

val configurations : configuration list
(** The paper's eight, in Table 2 order. *)

type measurement = {
  config_label : string;
  cp_s : float;
  rm_s : float;
  sdet_s : float;
  andrew_s : float;
}

val run : ?only:string list -> Run.config -> measurement list
(** The {!Run.config} fields map as: [scale] shrinks the workloads (1.0 =
    the paper's 40 MB cp+rm tree, 5 Sdet scripts, full Andrew), [seed]
    seeds every machine, [backend] picks the persistence tier every
    machine is built on, and [domains]/[progress] as documented on
    {!Run.config} ([trials] and [trace_dir] are unused here). [only]
    filters configuration labels. Results stay in Table 2 row order and
    are byte-identical to the serial run at any [domains]. *)

val measure_workload :
  ?backend:Rio_disk.Backend.kind ->
  configuration ->
  scale:float ->
  seed:int ->
  [ `Cp_rm | `Sdet | `Andrew ] ->
  float * float
(** One (configuration, workload) cell; returns (primary seconds, secondary
    seconds) — (cp, rm) for cp+rm, (total, 0) otherwise. *)

val to_table : measurement list -> Rio_util.Table.t
(** Rendered like Table 2. *)

val comparison_table : measurement list -> Rio_util.Table.t
(** Paper-vs-measured, including the headline speedup ratios (Rio vs
    write-through 4-22x, vs UFS 2-14x, vs UFS-delayed 1-3x). *)

val speedup : measurement list -> num:string -> den:string -> float list
(** Per-workload runtime ratios between two configurations
    ([num] slower / [den] faster). *)
