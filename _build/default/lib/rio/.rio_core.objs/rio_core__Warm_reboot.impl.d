lib/rio/warm_reboot.ml: Bytes List Registry Rio_disk Rio_fs Rio_mem Rio_sim Rio_util
