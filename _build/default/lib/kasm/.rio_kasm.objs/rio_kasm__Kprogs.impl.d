lib/kasm/kprogs.ml: Array Asm List Printf Rio_cpu
