(** Bitmap allocator for whole physical pages within one region.

    Used by the UBC to hand out file-cache pages and by the kernel heap's
    page-grained backing. Deterministic: pages are handed out lowest-address
    first so crash tests replay identically. *)

type t

val create : region:Layout.region -> t
(** All pages initially free. *)

val total_pages : t -> int

val free_pages : t -> int

val alloc : t -> Phys_mem.paddr option
(** Allocate one page; [None] when the region is exhausted. *)

val free : t -> Phys_mem.paddr -> unit
(** Return a page. Raises [Invalid_argument] if the address is not a page
    base inside the region or the page is already free (double free — a real
    kernel bug class, so we fail loudly). *)

val is_allocated : t -> Phys_mem.paddr -> bool

val iter_allocated : t -> (Phys_mem.paddr -> unit) -> unit
(** Visit allocated page bases in address order. *)

val reset : t -> unit
(** Free everything (reboot of the owning subsystem). *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Copy the allocation bitmap and counters. *)

val restore : t -> checkpoint -> unit
(** Rewind allocations to a checkpoint of the same allocator. *)
