(* The intro's motivating application: transaction processing. A commit is
   durable only when its data is permanent, so commit latency is governed
   by the storage system's write-permanence guarantee.

   A tiny write-ahead-logging "database" runs the same debit/credit-style
   transaction stream on three storage configurations:

   - UFS with fsync per commit (the classic safe setup),
   - UFS-delayed with NO fsync (fast but a crash loses ~30s of commits),
   - Rio (fsync-free AND durable: every write is instantly permanent).

   Run with: dune exec examples/database_commit.exe *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Rio_cache = Rio_core.Rio_cache
module Units = Rio_util.Units
module Prng = Rio_util.Prng

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* One account table of fixed-size records plus an append-only commit log. *)
let record_bytes = 128
let accounts = 512

type db = {
  fs : Fs.t;
  table : Fs.fd;
  log : Fs.fd;
  mutable log_pos : int;
  fsync_on_commit : bool;
}

let open_db fs ~fsync_on_commit =
  let table = Fs.create fs "/db/accounts" in
  Fs.pwrite fs table ~offset:((accounts * record_bytes) - 1) (Bytes.of_string "\000");
  let log = Fs.create fs "/db/log" in
  { fs; table; log; log_pos = 0; fsync_on_commit }

(* A transaction: read two accounts, write them back updated, append a log
   record, and make it durable per the configured discipline. *)
let transaction db prng =
  let a = Prng.int prng accounts and b = Prng.int prng accounts in
  let ra = Fs.pread db.fs db.table ~offset:(a * record_bytes) ~len:record_bytes in
  let _rb = Fs.pread db.fs db.table ~offset:(b * record_bytes) ~len:record_bytes in
  Bytes.set ra 0 (Char.chr ((Char.code (Bytes.get ra 0) + 1) land 0xFF));
  Fs.pwrite db.fs db.table ~offset:(a * record_bytes) ra;
  Fs.pwrite db.fs db.table ~offset:(b * record_bytes) ra;
  let record = Bytes.make 64 'L' in
  Fs.pwrite db.fs db.log ~offset:db.log_pos record;
  db.log_pos <- db.log_pos + Bytes.length record;
  if db.fsync_on_commit then begin
    Fs.fsync db.fs db.log;
    Fs.fsync db.fs db.table
  end

let run_config label ~policy ~rio ~fsync_on_commit ~transactions =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed 17) in
  Kernel.format kernel;
  if rio then
    ignore
      (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
         ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
         ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
  let fs = Kernel.mount kernel ~policy in
  Fs.mkdir fs "/db";
  let db = open_db fs ~fsync_on_commit in
  let prng = Prng.create ~seed:99 in
  let t0 = Engine.now engine in
  for _ = 1 to transactions do
    transaction db prng
  done;
  let elapsed = Engine.now engine - t0 in
  let per_txn = float_of_int elapsed /. float_of_int transactions in
  let tps = 1e6 /. per_txn in
  say "  %-34s %8.2f ms/commit  %8.0f tps   %s" label (per_txn /. 1e3) tps
    (if fsync_on_commit || policy = Fs.Rio_policy then "durable per commit"
     else "loses up to 30s on a crash")

let () =
  say "== Transaction commit latency by storage discipline ==";
  say "";
  let n = 400 in
  say "%d debit/credit transactions (2 record updates + 1 log append each):" n;
  say "";
  run_config "UFS + fsync per commit" ~policy:Fs.Ufs_default ~rio:false ~fsync_on_commit:true
    ~transactions:n;
  run_config "UFS-delayed, no fsync (unsafe)" ~policy:Fs.Ufs_delayed ~rio:false
    ~fsync_on_commit:false ~transactions:n;
  run_config "Rio, no fsync (still durable!)" ~policy:Fs.Rio_policy ~rio:true
    ~fsync_on_commit:false ~transactions:n;
  say "";
  say "Rio gives the unsafe configuration's throughput with the fsync";
  say "configuration's guarantee: \"fast, synchronous writes improve";
  say "performance by an order of magnitude for applications that require";
  say "synchronous semantics\" (paper, conclusions)."
