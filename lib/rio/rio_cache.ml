module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Page_alloc = Rio_mem.Page_alloc
module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Hooks = Rio_fs.Hooks
module Fs_types = Rio_fs.Fs_types
module Trace = Rio_obs.Trace

type stats = {
  checksum_updates : int;
  shadow_updates : int;
  protection_toggles : int;
  protection_traps : int;
  registered_pages : int;
  registry_updates : int;
  checksum_mismatches : int;
}

type t = {
  mem : Phys_mem.t;
  engine : Engine.t;
  costs : Costs.t;
  mmu : Rio_vm.Mmu.t;
  obs : Trace.t;
  registry : Registry.t;
  protect : Protect.t;
  shadow_page : int;
  mutable shadow_busy : bool;
  shadow_enabled : bool;
  registry_enabled : bool;
  dev : int;
  mutable checksum_updates : int;
  mutable shadow_updates : int;
  mutable registry_updates : int;
  mutable checksum_mismatches : int;
}

let checksum_of t ~paddr ~size =
  t.checksum_updates <- t.checksum_updates + 1;
  Engine.advance_by t.engine (Costs.checksum_time t.costs size);
  Phys_mem.checksum_range t.mem paddr ~len:size

let page_of paddr = paddr - (paddr mod Phys_mem.page_size)

let install_hooks t (hooks : Hooks.t) =
  hooks.Hooks.note_map <-
    (fun ~paddr ~blkno ~owner ~valid ->
      if not t.registry_enabled then ()
      else
      let kind, ino, offset =
        match owner with
        | Fs_types.Meta -> (Registry.Meta_buffer, 0, 0)
        | Fs_types.Data { ino; offset } -> (Registry.Data_buffer, ino, offset)
      in
      let size = max 0 (min valid Phys_mem.page_size) in
      (* Reuse the cached checksum only when the mapping is unchanged: same
         identity (ino, offset, blkno, kind) and same coverage, and not
         mid-write. A recycled buffer page keeps its size but carries new
         content for a new block — reusing the old checksum there would
         brand the fresh content a corruption (or mask a real one). *)
      let checksum =
        match Registry.find t.registry ~home_paddr:paddr with
        | Some e
          when e.Registry.size = size && not e.Registry.changing
               && e.Registry.ino = ino && e.Registry.offset = offset
               && e.Registry.blkno = blkno && e.Registry.kind = kind ->
          e.Registry.checksum
        | Some _ | None -> checksum_of t ~paddr ~size
      in
      Registry.register t.registry ~home_paddr:paddr ~dev:t.dev ~ino ~offset ~size ~blkno ~kind
        ~checksum;
      t.registry_updates <- t.registry_updates + 1;
      if Trace.enabled t.obs then
        Trace.emit t.obs Trace.Rio (Trace.Registry_update { paddr; ino; size });
      (* Registry bookkeeping: ~40 bytes touched (§2.2, "overhead ... low"). *)
      Engine.advance_by t.engine
        (Rio_util.Units.usec_of_sec_f (t.costs.Costs.registry_update_us /. 1e6));
      Protect.protect_page t.protect ~paddr);
  hooks.Hooks.note_unmap <-
    (fun ~paddr ->
      Registry.unregister t.registry ~home_paddr:paddr;
      Protect.unprotect_page t.protect ~paddr);
  hooks.Hooks.open_write <-
    (fun ~paddr ->
      let page = page_of paddr in
      match Registry.find t.registry ~home_paddr:page with
      | None -> ()
      | Some _ ->
        Registry.set_changing t.registry ~home_paddr:page true;
        Protect.unprotect_page t.protect ~paddr:page);
  hooks.Hooks.close_write <-
    (fun ~paddr ->
      let page = page_of paddr in
      match Registry.find t.registry ~home_paddr:page with
      | None -> ()
      | Some e ->
        Registry.set_closed t.registry ~home_paddr:page
          (checksum_of t ~paddr:page ~size:e.Registry.size);
        Protect.protect_page t.protect ~paddr:page);
  hooks.Hooks.metadata_update <-
    (fun ~paddr f ->
      let page = page_of paddr in
      match Registry.find t.registry ~home_paddr:page with
      | Some _ when t.shadow_enabled && not t.shadow_busy ->
        (* §2.3: copy to a shadow, point the registry at it, mutate the
           original, atomically point back. A crash mid-update restores the
           consistent pre-image. *)
        t.shadow_busy <- true;
        t.shadow_updates <- t.shadow_updates + 1;
        Phys_mem.blit_within t.mem ~src:page ~dst:t.shadow_page ~len:Phys_mem.page_size;
        Engine.advance_by t.engine (Costs.page_copy_time t.costs Phys_mem.page_size);
        Registry.redirect t.registry ~home_paddr:page ~paddr:t.shadow_page;
        if Trace.enabled t.obs then
          Trace.emit t.obs Trace.Rio (Trace.Shadow_flip { paddr = page; engaged = true });
        Fun.protect
          ~finally:(fun () ->
            Registry.redirect t.registry ~home_paddr:page ~paddr:page;
            t.shadow_busy <- false;
            if Trace.enabled t.obs then
              Trace.emit t.obs Trace.Rio (Trace.Shadow_flip { paddr = page; engaged = false }))
          f
      | Some _ | None -> f ())

let create ?(shadow = true) ?(registry = true) ~mem ~layout ~mmu ~engine ~costs ~hooks
    ~pool_alloc ~protection ~dev () =
  let registry_enabled = registry in
  let registry = Registry.create ~mem ~region:(Layout.region layout Layout.Registry) in
  let protect = Protect.create ~mmu ~engine ~costs ~enabled:protection in
  let shadow_page =
    match Page_alloc.alloc pool_alloc with
    | Some p -> p
    | None -> Fs_types.err "rio: no page available for the metadata shadow"
  in
  let t =
    {
      mem;
      engine;
      costs;
      mmu;
      obs = Engine.obs engine;
      registry;
      protect;
      shadow_page;
      shadow_busy = false;
      shadow_enabled = shadow;
      registry_enabled;
      dev;
      checksum_updates = 0;
      shadow_updates = 0;
      registry_updates = 0;
      checksum_mismatches = 0;
    }
  in
  if protection then Protect.protect_region protect ~region:(Layout.region layout Layout.Registry);
  install_hooks t hooks;
  t

let registry t = t.registry
let protect t = t.protect
let protection_enabled t = Protect.enabled t.protect

let stats t =
  {
    checksum_updates = t.checksum_updates;
    shadow_updates = t.shadow_updates;
    protection_toggles = Protect.toggles t.protect;
    protection_traps = Rio_vm.Mmu.protection_faults t.mmu;
    registered_pages = Registry.live_entries t.registry;
    registry_updates = t.registry_updates;
    checksum_mismatches = t.checksum_mismatches;
  }

(* ---- world-template rewind ---- *)

type checkpoint = {
  ck_registry : Registry.checkpoint;
  ck_toggles : int;
  ck_shadow_busy : bool;
  ck_checksum_updates : int;
  ck_shadow_updates : int;
  ck_registry_updates : int;
  ck_checksum_mismatches : int;
}

let checkpoint t =
  { ck_registry = Registry.checkpoint t.registry;
    ck_toggles = Protect.toggles t.protect;
    ck_shadow_busy = t.shadow_busy;
    ck_checksum_updates = t.checksum_updates;
    ck_shadow_updates = t.shadow_updates;
    ck_registry_updates = t.registry_updates;
    ck_checksum_mismatches = t.checksum_mismatches }

let restore t ck =
  Registry.restore t.registry ck.ck_registry;
  Protect.restore_toggles t.protect ck.ck_toggles;
  t.shadow_busy <- ck.ck_shadow_busy;
  t.checksum_updates <- ck.ck_checksum_updates;
  t.shadow_updates <- ck.ck_shadow_updates;
  t.registry_updates <- ck.ck_registry_updates;
  t.checksum_mismatches <- ck.ck_checksum_mismatches

let verify_all_checksums t =
  let mismatches = ref 0 in
  Registry.iter t.registry (fun e ->
      if not e.Registry.changing then begin
        let actual = Phys_mem.checksum_range t.mem e.Registry.paddr ~len:e.Registry.size in
        if actual <> e.Registry.checksum then begin
          incr mismatches;
          if Trace.enabled t.obs then
            Trace.emit t.obs Trace.Rio
              (Trace.Checksum_mismatch
                 { paddr = e.Registry.paddr; expected = e.Registry.checksum; actual })
        end
      end);
  t.checksum_mismatches <- t.checksum_mismatches + !mismatches;
  !mismatches
