let kib = 1024
let mib = 1024 * 1024
let kb n = n * kib
let mb n = n * mib

type usec = int

let usec n = n
let msec n = n * 1000
let sec n = n * 1_000_000
let minutes n = n * 60_000_000
let usec_of_sec_f s = int_of_float (Float.round (s *. 1e6))
let sec_of_usec u = float_of_int u /. 1e6

let pp_usec ppf u =
  if u < 1000 then Format.fprintf ppf "%dus" u
  else if u < 1_000_000 then Format.fprintf ppf "%.2fms" (float_of_int u /. 1e3)
  else if u < 60_000_000 then Format.fprintf ppf "%.2fs" (float_of_int u /. 1e6)
  else Format.fprintf ppf "%.1fmin" (float_of_int u /. 6e7)

let pp_bytes ppf n =
  if n < kib then Format.fprintf ppf "%dB" n
  else if n < mib then Format.fprintf ppf "%.4gKB" (float_of_int n /. float_of_int kib)
  else Format.fprintf ppf "%.4gMB" (float_of_int n /. float_of_int mib)
