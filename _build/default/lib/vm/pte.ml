type t = {
  pfn : int;
  mutable valid : bool;
  mutable writable : bool;
}

let make ~pfn ~valid ~writable = { pfn; valid; writable }

let pp ppf t =
  Format.fprintf ppf "pfn=%d%s%s" t.pfn
    (if t.valid then " V" else " -")
    (if t.writable then "W" else "-")
