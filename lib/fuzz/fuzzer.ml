module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Fs_types = Rio_fs.Fs_types
module Fsck = Rio_fs.Fsck
module Phys_mem = Rio_mem.Phys_mem
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Vista = Rio_txn.Vista
module Trace = Rio_obs.Trace
module Forensics = Rio_obs.Forensics
module Pool = Rio_parallel.Pool
module Run = Rio_harness.Run
module World = Rio_world.World
module Boundary = Rio_check.Boundary
module Explorer = Rio_check.Explorer
module Prng = Rio_util.Prng
module Gen = Rio_workload.Script.Gen
module Cov = Rio_cov.Cov
module Json = Rio_util.Json

exception Invalid_program

(* ---------------- one attempt ---------------- *)

(* One world build + program run, optionally crashing at boundary [trip]
   and auditing the recovery. Everything the fuzzer and the shrinker do is
   a pure function of (spec, seed, ops, trip) — that is what makes trials
   shardable across domains and counterexamples replayable. *)

type attempt = {
  boundaries : int;  (** Boundaries emitted (all of them when not tripped). *)
  labels : string list;  (** Their labels, in ordinal order. *)
  op_starts : int array;
      (** [op_starts.(k)] = first ordinal of op [k]; length ops+1, the last
          entry closing the final op's range. *)
  crashed_during : int option;  (** Index of the op the trip interrupted. *)
  tripped : string option;  (** The tripped boundary's label. *)
  problems : string list;  (** Contract violations found after recovery. *)
}

let make_rio ~(spec : Explorer.spec) kernel =
  ignore
    (Rio_cache.create ~shadow:spec.Explorer.shadow ~registry:spec.Explorer.registry
       ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel) ~mmu:(Kernel.mmu kernel)
       ~engine:(Kernel.engine kernel) ~costs:(Kernel.costs kernel) ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:spec.Explorer.protection ~dev:1 ()
      : Rio_cache.t)

(* ---------------- world templates ---------------- *)

(* The expensive part of an attempt used to be the world build (boot +
   format + mount + payload setup, ~ms each); every attempt now rents a
   frozen {!World} template and rewinds it in O(dirty pages). Templates
   are per-domain (worker domains are spawned fresh by each
   [Pool.map_list], so the cache amortizes within one fan-out; the main
   domain keeps its cache for the whole process at [-j 1]) and keyed by
   everything the build depends on, so a restored world is byte-for-byte
   the world a fresh build would produce. The [--reference] mode
   ({!World.set_use_templates}[ false]) and any traced replay skip the
   cache and build from scratch — same [attempt_body] either way. *)

let build_world ~obs ~(spec : Explorer.spec) ~seed =
  World.create ~obs ~protection:spec.Explorer.protection ~shadow:spec.Explorer.shadow
    ~registry:spec.Explorer.registry ~policy:spec.Explorer.policy ~backend:spec.Explorer.backend
    ~wb_unordered:spec.Explorer.wb_unordered ~seed ()

let attach_probe ~obs w =
  let probe = Boundary.create ~mem:(World.mem w) ~obs () in
  Boundary.instrument_hooks probe (World.hooks w);
  Boundary.instrument_disk probe (World.disk w);
  probe

type single_tpl = { sw : World.t; sprobe : Boundary.t; spay : Program.world }
type tasks_tpl = { tw : World.t; tprobe : Boundary.t; tpay : Program.tworld }

type cache = {
  singles : (string, single_tpl) Hashtbl.t;
  multis : (string, tasks_tpl) Hashtbl.t;
}

(* A campaign touches one (spec, seed) per worker at a time; the matrix
   walks four specs. Blow the whole cache on overflow — eviction order
   would otherwise be hash-table order, and nothing here needs LRU. *)
let cache_cap = 4

let caches =
  Domain.DLS.new_key (fun () -> { singles = Hashtbl.create 8; multis = Hashtbl.create 8 })

let evict_if_full tbl dispose =
  if Hashtbl.length tbl >= cache_cap then begin
    Hashtbl.iter (fun _ e -> dispose e) tbl;
    Hashtbl.reset tbl
  end

let single_template ~(spec : Explorer.spec) ~seed =
  let c = Domain.DLS.get caches in
  let key =
    Printf.sprintf "%s@%s/%d" spec.Explorer.label
      (Rio_disk.Backend.to_string spec.Explorer.backend)
      seed
  in
  let e =
    match Hashtbl.find_opt c.singles key with
    | Some e -> e
    | None ->
      evict_if_full c.singles (fun e ->
          Boundary.drop_capture e.sprobe;
          World.dispose e.sw);
      let w = build_world ~obs:Trace.null ~spec ~seed in
      let probe = attach_probe ~obs:Trace.null w in
      let pay = Program.setup (World.fs w) in
      let vst = Vista.save pay.Program.store in
      World.on_restore w (fun () ->
          Boundary.drop_capture probe;
          Vista.restore pay.Program.store vst);
      World.freeze w;
      let e = { sw = w; sprobe = probe; spay = pay } in
      Hashtbl.replace c.singles key e;
      e
  in
  (* Restore at attempt START, not end: an exception escaping one attempt
     (Invalid_program, most commonly) can never poison the next. *)
  ignore (World.restore e.sw : int);
  e

(* The attempt proper, over an already-built world. Owns no lifecycle:
   the template path rewinds before the next rental, the fresh path
   disposes in its [Fun.protect]. *)
let attempt_body ~(spec : Explorer.spec) w probe (pay : Program.world) ~ops ~trip =
  let engine = World.engine w in
  let kernel = World.kernel w in
  let fs = World.fs w in
  Vista.set_observer pay.Program.store (Boundary.vista_event probe);
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let op_starts = Array.make (n + 1) 0 in
  Boundary.arm probe ~trip_at:trip;
  let crashed = ref None in
  (try
     for k = 0 to n - 1 do
       op_starts.(k) <- Boundary.emitted probe;
       match Program.exec pay arr.(k) with
       | () -> ()
       | exception Boundary.Crash_here ->
         crashed := Some k;
         raise Stdlib.Exit
       | exception Fs_types.Fs_error _ ->
         (* Only shrinker-made sub-programs can be invalid; generated
            programs are valid by construction. *)
         Boundary.disarm probe;
         raise Invalid_program
     done
   with Stdlib.Exit -> ());
  Boundary.disarm probe;
  let total = Boundary.emitted probe in
  let filled_from = match !crashed with Some k -> k + 1 | None -> n in
  for i = filled_from to n do
    op_starts.(i) <- total
  done;
  let labels = Boundary.labels probe in
  match !crashed with
  | None ->
    { boundaries = total; labels; op_starts; crashed_during = None; tripped = None; problems = [] }
  | Some k ->
    assert (Boundary.has_crash_image probe);
    Fs.crash fs;
    let tripped = Boundary.tripped_label probe in
    let problems =
      if spec.Explorer.cold then begin
        (* Cold recovery: the memory image is LOST — drop the capture
           instead of restoring it. Only the committed disk survives;
           fsck repairs it and a fresh kernel boots on it. The audit is
           the sync-durability contract ({!Program.check_cold}): data a
           completed [Sync] pushed out must read back exact. *)
        Boundary.drop_capture probe;
        let report = Fsck.run ~disk:(World.disk w) in
        if report.Fsck.unrecoverable then []
        else begin
          let kernel2 =
            Kernel.boot_on_disk ~engine ~costs:(World.costs w) (World.config w)
              ~disk:(Kernel.disk kernel)
          in
          make_rio ~spec kernel2;
          let problems =
            match Kernel.mount kernel2 ~policy:spec.Explorer.policy with
            | fs2 -> (
              try Program.check_cold fs2 ~ops ~in_flight:k
              with Fs_types.Fs_error m -> [ "cold recovery check raised: " ^ m ])
            | exception Fs_types.Fs_error _ ->
              (* A torn superblock/root can leave the image unmountable;
                 the cold contract forgives structural loss. *)
              []
          in
          Phys_mem.retire (Kernel.mem kernel2);
          problems
        end
      end
      else begin
        Boundary.restore_crash_image probe;
        let recovered = ref None in
        ignore
          (Warm_reboot.perform ~mem:(World.mem w) ~disk:(World.disk w) ~layout:(World.layout w)
             ~engine
             ~reboot:(fun () ->
               let kernel2 =
                 Kernel.boot_warm ~engine ~costs:(World.costs w) (World.config w)
                   ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
               in
               make_rio ~spec kernel2;
               let fs2 = Kernel.mount kernel2 ~policy:spec.Explorer.policy in
               recovered := Some fs2;
               fs2)
            : Warm_reboot.report);
        let fs2 = match !recovered with Some f -> f | None -> assert false in
        try Program.check fs2 ~ops ~in_flight:k
        with Fs_types.Fs_error m -> [ "recovery check raised: " ^ m ]
      end
    in
    {
      boundaries = total;
      labels;
      op_starts;
      crashed_during = Some k;
      tripped;
      problems;
    }

let run_attempt ?(obs = Trace.null) ~(spec : Explorer.spec) ~seed ~ops ~trip () =
  if (not (Trace.enabled obs)) && World.templates_on () then begin
    let e = single_template ~spec ~seed in
    attempt_body ~spec e.sw e.sprobe e.spay ~ops ~trip
  end
  else begin
    (* Reference / traced path: build from scratch, run, throw away. *)
    let w = build_world ~obs ~spec ~seed in
    let probe = attach_probe ~obs w in
    let pay = Program.setup (World.fs w) in
    Fun.protect
      ~finally:(fun () ->
        Boundary.drop_capture probe;
        World.dispose w)
      (fun () -> attempt_body ~spec w probe pay ~ops ~trip)
  end

(* ---------------- one fuzz trial ---------------- *)

type raw_violation = {
  r_ops : Gen.op list;
  r_boundaries : int;
  r_ordinal : int;
  r_in_flight : int;
  r_problems : string list;
}

type outcome = Clean of int  (** boundaries enumerated *) | Bad of raw_violation

(* Largest k with op_starts.(k) <= r: the op in flight at boundary r. *)
let in_flight_of op_starts r =
  let n = Array.length op_starts - 1 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if op_starts.(i) <= r then k := i
  done;
  !k

(* Stratified boundary choice: bucket the schedule by label class
   ({!Rio_cov.Cov.label_class} — "meta-torn", "registry-update",
   "vista-commit-start", ...), pick a class uniformly, then an ordinal
   within it. A uniform pick over ordinals would almost always land in
   the data-store windows that dominate long schedules and starve the
   rare metadata/registry boundaries where the atomicity protocol
   actually lives. [prefer] is the coverage feedback hook: when any of
   the named classes appear in this schedule, the class pick is
   restricted to those — campaigns steer later trials into the cells
   earlier trials never crashed in. Deterministic in (prng, prefer). *)
let pick_boundary prng ~prefer labels =
  let classes = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun i l ->
      let cls = Cov.label_class l in
      match Hashtbl.find_opt classes cls with
      | Some ords -> Hashtbl.replace classes cls (i :: ords)
      | None ->
        order := cls :: !order;
        Hashtbl.replace classes cls [ i ])
    labels;
  let order = Array.of_list (List.rev !order) in
  let wanted =
    Array.of_list (List.filter (fun c -> Array.exists (String.equal c) order) prefer)
  in
  let pool = if Array.length wanted > 0 then wanted else order in
  let cls = pool.(Prng.int prng (Array.length pool)) in
  let ords = Array.of_list (List.rev (Hashtbl.find classes cls)) in
  ords.(Prng.int prng (Array.length ords))

let fuzz_one ?(prefer = []) ?(with_cov = false) ~spec ~world_seed ~max_ops ~prng_seed () =
  let prng = Prng.create ~seed:prng_seed in
  let nops = 1 + Prng.int prng max_ops in
  (* Under the idle write-back policy the [Sync] barrier is meaningful
     (it drains the write-behind pipeline), and the cold-recovery specs
     need it in programs — it is what they owe anything to. Elsewhere it
     stays off so fixed-seed programs are unchanged. *)
  let gspec =
    if spec.Explorer.policy = Fs.Rio_idle then { Program.gen_spec with Gen.sync = true }
    else Program.gen_spec
  in
  let ops = Gen.generate ~prng gspec ~ops:nops in
  let counting = run_attempt ~spec ~seed:world_seed ~ops ~trip:(-1) () in
  let cov = if with_cov then Some (Cov.create ()) else None in
  Option.iter (fun c -> Cov.note_schedule c ~labels:counting.labels) cov;
  if counting.boundaries = 0 then (Clean 0, cov)
  else begin
    let r = pick_boundary prng ~prefer counting.labels in
    let a = run_attempt ~spec ~seed:world_seed ~ops ~trip:r () in
    let in_flight = in_flight_of counting.op_starts r in
    let problems =
      match a.crashed_during with
      | Some _ -> a.problems
      | None -> [ Printf.sprintf "crash point %d was not reached on replay" r ]
    in
    Option.iter
      (fun c ->
        let outcome =
          if a.crashed_during = None then Cov.Unreached
          else if problems = [] then Cov.Survived
          else Cov.Violated
        in
        Cov.record c
          ~cls:(Cov.label_class (List.nth counting.labels r))
          ~op:(Gen.kind (List.nth ops in_flight))
          ~ordinal:r outcome)
      cov;
    if problems = [] then (Clean counting.boundaries, cov)
    else
      ( Bad
          {
            r_ops = ops;
            r_boundaries = counting.boundaries;
            r_ordinal = r;
            r_in_flight = in_flight;
            r_problems = problems;
          },
        cov )
  end

(* ---------------- the shrinker ---------------- *)

(* Delta-debugging over two axes: drop ops the failure does not need, then
   walk the crash ordinal down. Everything after the in-flight op is dead
   weight by construction (the crash preempts it), so each step
   re-truncates there first. Every candidate is re-validated by actually
   running it; invalid sub-programs (a removed creat orphans an append)
   just fail validation. Deterministic: same inputs, same minimum. *)

let shrink_budget = 400

let truncate_after ops k = List.filteri (fun i _ -> i <= k) ops
let remove_at i ops = List.filteri (fun j _ -> j <> i) ops

let shrink ~spec ~world_seed ~ops ~ordinal =
  let budget = ref shrink_budget in
  let attempts = ref 0 in
  let spend () =
    incr attempts;
    decr budget
  in
  let count ops =
    spend ();
    match run_attempt ~spec ~seed:world_seed ~ops ~trip:(-1) () with
    | a -> Some a
    | exception Invalid_program -> None
  in
  let fails ops r =
    spend ();
    match run_attempt ~spec ~seed:world_seed ~ops ~trip:r () with
    | a -> a.crashed_during <> None && a.problems <> []
    | exception Invalid_program -> false
  in
  (* Keep only ops.(0..k); the boundary stream up to [r] is untouched, so
     the same ordinal still reproduces — no re-validation needed. *)
  let slice starts k = Array.sub starts 0 (k + 2) in
  (* One removal pass: try dropping each op before the in-flight one,
     remapping the ordinal into the in-flight op's shifted boundary range
     (same offset first, then the rest of the range). Restarts on every
     success, so it ends at a local fixpoint. *)
  let rec removal_pass ops starts r k =
    let offset = r - starts.(k) in
    let rec try_i i =
      if i >= k || !budget <= 0 then (ops, starts, r, k)
      else begin
        let cand = remove_at i ops in
        let ck = k - 1 in
        match count cand with
        | None -> try_i (i + 1)
        | Some c ->
          let lo = c.op_starts.(ck) and hi = c.op_starts.(ck + 1) in
          let prefer = lo + offset in
          let range = List.init (hi - lo) (fun j -> lo + j) in
          let ordered =
            if prefer >= lo && prefer < hi then
              prefer :: List.filter (fun x -> x <> prefer) range
            else range
          in
          (match List.find_opt (fun r' -> !budget > 0 && fails cand r') ordered with
          | Some r' -> removal_pass cand (slice c.op_starts ck) r' ck
          | None -> try_i (i + 1))
      end
    in
    try_i 0
  in
  (* Smallest failing ordinal below r, if any (the boundary stream of a
     fixed program is fixed, so this is a plain linear scan). *)
  let scan_below ops r =
    let rec go r' =
      if r' >= r || !budget <= 0 then None else if fails ops r' then Some r' else go (r' + 1)
    in
    go 0
  in
  let rec outer ops starts r k =
    let ops, starts, r, k = removal_pass ops starts r k in
    match scan_below ops r with
    | Some r' ->
      let k' = in_flight_of starts r' in
      outer (truncate_after ops k') (slice starts k') r' k'
    | None -> (ops, r, k)
  in
  match count ops with
  | None -> (ops, ordinal, in_flight_of [| 0 |] 0, !attempts) (* unreachable: ops ran once *)
  | Some c ->
    let k0 = in_flight_of c.op_starts ordinal in
    let ops, r, k = outer (truncate_after ops k0) (slice c.op_starts k0) ordinal k0 in
    (ops, r, k, !attempts)

(* ---------------- reports ---------------- *)

type counterexample = {
  trial : int;
  original_ops : int;
  original_ordinal : int;
  ops : Gen.op list;
  ordinal : int;
  in_flight : int;
  label : string;
  problems : string list;
  narrative : string list;
  shrink_attempts : int;
}

type report = {
  spec : Explorer.spec;
  seed : int;
  trials : int;
  max_ops : int;
  boundaries : int;  (** Summed over trials (each trial's full schedule). *)
  violations : int;  (** Trials whose crash broke a contract. *)
  counterexamples : counterexample list;  (** Shrunk; at most [shrink_limit]. *)
  coverage : Cov.t option;  (** The campaign's coverage map ([config.coverage]). *)
}

let default_max_ops = 8

let shrink_and_describe ~recorder ~spec ~world_seed (t, v) =
  let ops, ordinal, in_flight, shrink_attempts =
    shrink ~spec ~world_seed ~ops:v.r_ops ~ordinal:v.r_ordinal
  in
  (* Replay the minimum with the flight recorder live: the narrative is
     the counterexample's evidence. *)
  let obs = recorder () in
  let final = run_attempt ~obs ~spec ~seed:world_seed ~ops ~trip:ordinal () in
  let problems = if final.problems = [] then v.r_problems else final.problems in
  {
    trial = t;
    original_ops = List.length v.r_ops;
    original_ordinal = v.r_ordinal;
    ops;
    ordinal;
    in_flight;
    label = Option.value final.tripped ~default:"?";
    problems;
    narrative = Forensics.narrative (Forensics.summarize obs);
    shrink_attempts;
  }

(* With coverage on, trials run in fixed-size rounds: between rounds the
   per-trial maps collected so far merge (in trial order) and the
   still-unhit boundary classes become the next round's [prefer] set for
   {!pick_boundary}. The round boundaries and the merge order are both
   pure functions of the trial indices, so the feedback — and therefore
   the whole campaign — stays byte-identical at any [domains]. *)
let coverage_round = 32

let run ?(spec = Explorer.rio_prot) ?(max_ops = default_max_ops) ?(shrink_limit = 3)
    (cfg : Run.config) =
  let world_seed = cfg.Run.seed in
  let report_done = Run.reporter cfg ~total:cfg.Run.trials in
  let with_cov = cfg.Run.coverage in
  let run_round ~prefer ts =
    Pool.map_list ~domains:cfg.Run.domains
      (fun t ->
        let out, tcov =
          fuzz_one ~prefer ~with_cov ~spec ~world_seed ~max_ops
            ~prng_seed:((world_seed * 0x1000003) + t) ()
        in
        report_done ~label:spec.Explorer.label ~detail:(Printf.sprintf "trial %d" t);
        (t, out, tcov))
      ts
  in
  let cov = if with_cov then Some (Cov.create ()) else None in
  let outcomes =
    match cov with
    | None ->
      List.map (fun (t, o, _) -> (t, o)) (run_round ~prefer:[] (List.init cfg.Run.trials Fun.id))
    | Some c ->
      let acc = ref [] in
      let rec rounds start =
        if start < cfg.Run.trials then begin
          let stop = min cfg.Run.trials (start + coverage_round) in
          let res =
            run_round ~prefer:(Cov.unhit_classes c)
              (List.init (stop - start) (fun i -> start + i))
          in
          List.iter (fun (_, _, tcov) -> Option.iter (fun s -> Cov.merge ~into:c s) tcov) res;
          acc := List.rev_append (List.map (fun (t, o, _) -> (t, o)) res) !acc;
          rounds stop
        end
      in
      rounds 0;
      List.rev !acc
  in
  let boundaries =
    List.fold_left
      (fun acc (_, o) -> acc + match o with Clean b -> b | Bad v -> v.r_boundaries)
      0 outcomes
  in
  let bad = List.filter_map (fun (t, o) -> match o with Bad v -> Some (t, v) | _ -> None) outcomes in
  let to_shrink = List.filteri (fun i _ -> i < shrink_limit) bad in
  (* Shrinking re-runs many candidate trials per violation, so only the
     first [shrink_limit] violations (in trial order: deterministic) get
     the treatment; the rest are counted. *)
  let recorder = Run.recorder cfg in
  let counterexamples =
    Pool.map_list ~domains:cfg.Run.domains
      (shrink_and_describe ~recorder ~spec ~world_seed)
      to_shrink
  in
  Option.iter
    (fun c -> List.iter (fun cx -> Cov.add_shrink c cx.shrink_attempts) counterexamples)
    cov;
  {
    spec;
    seed = cfg.Run.seed;
    trials = cfg.Run.trials;
    max_ops;
    boundaries;
    violations = List.length bad;
    counterexamples;
    coverage = cov;
  }

(* ---------------- rendering ---------------- *)

let spec_line (spec : Explorer.spec) =
  Printf.sprintf "%s (protection %s, shadow %s, registry %s, backend %s%s)" spec.Explorer.label
    (if spec.Explorer.protection then "on" else "off")
    (if spec.Explorer.shadow then "on" else "off")
    (if spec.Explorer.registry then "on" else "off")
    (Rio_disk.Backend.to_string spec.Explorer.backend)
    (if spec.Explorer.cold then ", cold recovery" else "")

let render_counterexample buf c =
  Buffer.add_string buf
    (Printf.sprintf
       "\ncounterexample (trial %d): shrunk %d ops @ boundary %d -> %d ops @ boundary %d (%d runs)\n"
       c.trial c.original_ops c.original_ordinal (List.length c.ops) c.ordinal c.shrink_attempts);
  Buffer.add_string buf "  program:\n";
  List.iteri
    (fun i op ->
      Buffer.add_string buf
        (Printf.sprintf "    %d. %s%s\n" (i + 1) (Gen.describe op)
           (if i = c.in_flight then "   <- in flight at the crash" else "")))
    c.ops;
  Buffer.add_string buf (Printf.sprintf "  crash at boundary %d (%s)\n" c.ordinal c.label);
  List.iter (fun p -> Buffer.add_string buf ("  problem: " ^ p ^ "\n")) c.problems;
  if c.narrative <> [] then begin
    Buffer.add_string buf "  trace:\n";
    List.iter (fun l -> Buffer.add_string buf ("    | " ^ l ^ "\n")) c.narrative
  end

let render r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("crash-schedule fuzz: " ^ spec_line r.spec ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "  seed %d, %d trials of <= %d ops, %d boundaries enumerated\n" r.seed
       r.trials r.max_ops r.boundaries);
  Buffer.add_string buf
    (if r.violations = 0 then "  violations: 0\n"
     else
       Printf.sprintf "  violations: %d (%d shrunk below)\n" r.violations
         (List.length r.counterexamples));
  List.iter (fun c -> render_counterexample buf c) r.counterexamples;
  Buffer.contents buf

let counterexample_json c =
  Json.Obj
    [
      ("trial", Json.Int c.trial);
      ("original_ops", Json.Int c.original_ops);
      ("original_ordinal", Json.Int c.original_ordinal);
      ("ops", Json.Arr (List.map (fun op -> Json.Str (Gen.describe op)) c.ops));
      ("ordinal", Json.Int c.ordinal);
      ("in_flight", Json.Int c.in_flight);
      ("label", Json.Str c.label);
      ("problems", Json.Arr (List.map (fun p -> Json.Str p) c.problems));
      ("shrink_attempts", Json.Int c.shrink_attempts);
    ]

let report_json r =
  Json.Obj
    ([
       ("spec", Explorer.spec_json r.spec);
       ("seed", Json.Int r.seed);
       ("trials", Json.Int r.trials);
       ("max_ops", Json.Int r.max_ops);
       ("boundaries", Json.Int r.boundaries);
       ("violations", Json.Int r.violations);
       ("counterexamples", Json.Arr (List.map counterexample_json r.counterexamples));
     ]
    @ match r.coverage with Some cov -> [ ("coverage", Cov.to_json cov) ] | None -> [])

(* ---------------- the ablation matrix ---------------- *)

type matrix_entry = { entry_report : report; ok : bool }

(* The acceptance bar for a caught ablation: at least one counterexample
   shrunk to a handful of ops — a catch nobody can read is not evidence. *)
let max_repro_ops = 6

let run_matrix ?(specs = Explorer.fuzz_specs) ?max_ops ?shrink_limit (cfg : Run.config) =
  List.map
    (fun (spec : Explorer.spec) ->
      let entry_report = run ~spec ?max_ops ?shrink_limit cfg in
      let ok =
        if spec.Explorer.expect_safe then entry_report.violations = 0
        else
          entry_report.violations > 0
          && List.exists
               (fun c -> List.length c.ops <= max_repro_ops && c.problems <> [])
               entry_report.counterexamples
      in
      { entry_report; ok })
    specs

let matrix_ok entries = List.for_all (fun e -> e.ok) entries

let matrix_json entries =
  Json.Arr
    (List.map
       (fun e ->
         Json.Obj [ ("ok", Json.Bool e.ok); ("report", report_json e.entry_report) ])
       entries)

let render_matrix entries =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "fuzz matrix: the fuzzer must catch the unsafe ablations\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %8s %11s %11s  %-9s %s\n" "configuration" "trials" "boundaries"
       "violations" "expected" "verdict");
  List.iter
    (fun e ->
      let r = e.entry_report in
      let expected = if r.spec.Explorer.expect_safe then "safe" else "unsafe" in
      let verdict =
        match (e.ok, r.spec.Explorer.expect_safe) with
        | true, true -> "ok"
        | true, false -> "ok (caught, shrunk)"
        | false, true -> "MISMATCH: violations in a safe configuration"
        | false, false -> "MISMATCH: unsafe configuration not caught (or repro too big)"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %8d %11d %11d  %-9s %s\n" r.spec.Explorer.label r.trials
           r.boundaries r.violations expected verdict))
    entries;
  List.iter
    (fun e ->
      let r = e.entry_report in
      if (not r.spec.Explorer.expect_safe) && r.counterexamples <> [] then begin
        Buffer.add_string buf (Printf.sprintf "\n[%s]" r.spec.Explorer.label);
        render_counterexample buf (List.hd r.counterexamples)
      end)
    entries;
  Buffer.contents buf

(* ---------------- multi-task fuzzing ---------------- *)

module Task = Rio_task.Task
module Sched = Rio_task.Sched

(* One multi-task attempt: the same build/run/crash/audit cycle as
   [run_attempt], but the programs run as scheduled task fibers, every
   boundary is a preemption point, and the audit is per task. Pure in
   (spec, locking, seed, sched_seed, progs, trip). *)

type tattempt = {
  t_boundaries : int;
  t_labels : string list;
  t_bounds : (int * int) array array;
      (** [t_bounds.(i).(k)] = boundary-ordinal range [\[start, stop)] of
          task [i]'s op [k]; [-1] where the op never started/finished. *)
  t_progress : Program.progress array;  (** Per task, when the run ended. *)
  t_crasher : (int * int) option;  (** [(task, op)] whose boundary tripped. *)
  t_raised : (int * int * string) option;
      (** A fiber raised [Fs_error] mid-run (ablation symptom). *)
  t_tripped : string option;
  t_problems : string list;
}

let tasks_template ~(spec : Explorer.spec) ~seed ~tasks =
  let c = Domain.DLS.get caches in
  let key =
    Printf.sprintf "%s@%s/%d/%d" spec.Explorer.label
      (Rio_disk.Backend.to_string spec.Explorer.backend)
      seed tasks
  in
  let e =
    match Hashtbl.find_opt c.multis key with
    | Some e -> e
    | None ->
      evict_if_full c.multis (fun e ->
          Boundary.drop_capture e.tprobe;
          World.dispose e.tw);
      let w = build_world ~obs:Trace.null ~spec ~seed in
      let probe = attach_probe ~obs:Trace.null w in
      let pay = Program.setup_tasks (World.fs w) ~tasks in
      let vsts = Array.map Vista.save pay.Program.stores in
      World.on_restore w (fun () ->
          Boundary.drop_capture probe;
          Array.iteri (fun i s -> Vista.restore s vsts.(i)) pay.Program.stores);
      World.freeze w;
      let e = { tw = w; tprobe = probe; tpay = pay } in
      Hashtbl.replace c.multis key e;
      e
  in
  ignore (World.restore e.tw : int);
  e

let attempt_tasks_body ~(spec : Explorer.spec) ~locking w probe (tw : Program.tworld)
    ~sched_seed ~(progs : Gen.op list array) ~trip =
  let engine = World.engine w in
  let kernel = World.kernel w in
  let fs = World.fs w in
  let nt = Array.length progs in
  Array.iter (fun s -> Vista.set_observer s (Boundary.vista_event probe)) tw.Program.stores;
  let oparr = Array.map Array.of_list progs in
  let starts = Array.map (fun ops -> Array.make (Array.length ops) (-1)) oparr in
  let stops = Array.map (fun ops -> Array.make (Array.length ops) (-1)) oparr in
  let cur = Array.make nt (-1) in
  let sched = Sched.create ~seed:sched_seed in
  (* The wiring that makes interleaving x crash-point one schedule space:
     scheduler events become boundaries (crashable), boundaries become
     preemption points (interleavable). *)
  Sched.set_on_point sched (Boundary.point probe);
  Boundary.set_on_emit probe (fun _ -> Sched.preempt sched);
  for i = 0 to nt - 1 do
    let th = Task.make ~id:i ~name:(Printf.sprintf "t%d" i) in
    Sched.spawn sched th (fun task ->
        Task.chdir task (Program.task_root i);
        Array.iteri
          (fun k op ->
            cur.(i) <- k;
            starts.(i).(k) <- Boundary.emitted probe;
            Program.exec_task sched ~locking ~task tw ~store:tw.Program.stores.(i) op;
            stops.(i).(k) <- Boundary.emitted probe;
            cur.(i) <- -1)
          oparr.(i))
  done;
  Boundary.arm probe ~trip_at:trip;
  let crashed = ref false in
  let raised = ref None in
  (try Sched.run sched with
  | Boundary.Crash_here -> crashed := true
  | Fs_types.Fs_error m -> (
    match Sched.crashed sched with
    | Some task ->
      let i = Task.id task in
      raised := Some (i, cur.(i), m)
    | None -> raise (Fs_types.Fs_error m)));
  Boundary.disarm probe;
  let total = Boundary.emitted probe in
  let labels = Boundary.labels probe in
  let t_bounds =
    Array.init nt (fun i ->
        Array.init (Array.length oparr.(i)) (fun k -> (starts.(i).(k), stops.(i).(k))))
  in
  (* Where each task stood when the run ended: ops execute in order, so
     the first op with a start but no stop is the in-flight one. *)
  let progress_of i =
    let n = Array.length oparr.(i) in
    let rec go k =
      if k >= n then Program.Completed n
      else if stops.(i).(k) >= 0 then go (k + 1)
      else if starts.(i).(k) >= 0 then Program.Interrupted k
      else Program.Completed k
    in
    go 0
  in
  let t_progress = Array.init nt progress_of in
  let t_crasher =
    if !crashed then
      match Sched.crashed sched with
      | Some task ->
        let i = Task.id task in
        if cur.(i) >= 0 then Some (i, cur.(i)) else None
      | None -> None
    else None
  in
  let base =
    {
      t_boundaries = total;
      t_labels = labels;
      t_bounds;
      t_progress;
      t_crasher;
      t_raised = !raised;
      t_tripped = Boundary.tripped_label probe;
      t_problems = [];
    }
  in
  if not !crashed then begin
    match !raised with
    | Some (i, k, m) ->
      (* No crash was injected: the interleaving alone broke an op. *)
      let opdesc =
        if k >= 0 && k < Array.length oparr.(i) then Gen.describe oparr.(i).(k) else "?"
      in
      { base with t_problems = [ Printf.sprintf "t%d: %s raised: %s" i opdesc m ] }
    | None ->
      if trip >= 0 then base (* trip unreached; the caller flags it *)
      else begin
        (* Counting pass: audit the final state too — a lost update that
           never crashes anything is still a violation. *)
        let problems =
          try Program.check_tasks fs ~progs ~progress:t_progress
          with Fs_types.Fs_error m -> [ "final audit raised: " ^ m ]
        in
        { base with t_problems = problems }
      end
  end
  else begin
    assert (Boundary.has_crash_image probe);
    Fs.crash fs;
    Boundary.restore_crash_image probe;
    let recovered = ref None in
    ignore
      (Warm_reboot.perform ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
         ~layout:(Kernel.layout kernel) ~engine
         ~reboot:(fun () ->
           let kernel2 =
             Kernel.boot_warm ~engine ~costs:(World.costs w) (World.config w)
               ~mem:(Kernel.mem kernel) ~disk:(Kernel.disk kernel)
           in
           make_rio ~spec kernel2;
           let fs2 = Kernel.mount kernel2 ~policy:spec.Explorer.policy in
           recovered := Some fs2;
           fs2)
        : Warm_reboot.report);
    let fs2 = match !recovered with Some f -> f | None -> assert false in
    let problems =
      try Program.check_tasks fs2 ~progs ~progress:t_progress
      with Fs_types.Fs_error m -> [ "recovery check raised: " ^ m ]
    in
    { base with t_problems = problems }
  end

let run_attempt_tasks ?(obs = Trace.null) ~(spec : Explorer.spec) ~locking ~seed ~sched_seed
    ~(progs : Gen.op list array) ~trip () =
  (* Pre-validate against the model: sub-programs the shrinker builds can
     be self-inconsistent, and catching that here costs no world rental. *)
  Array.iteri
    (fun i ops ->
      match Gen.Model.after ~root:(Program.task_root i) ops with
      | (_ : Gen.Model.t) -> ()
      | exception Not_found -> raise Invalid_program)
    progs;
  if (not (Trace.enabled obs)) && World.templates_on () then begin
    let e = tasks_template ~spec ~seed ~tasks:(Array.length progs) in
    attempt_tasks_body ~spec ~locking e.tw e.tprobe e.tpay ~sched_seed ~progs ~trip
  end
  else begin
    let w = build_world ~obs ~spec ~seed in
    let probe = attach_probe ~obs w in
    let pay = Program.setup_tasks (World.fs w) ~tasks:(Array.length progs) in
    Fun.protect
      ~finally:(fun () ->
        Boundary.drop_capture probe;
        World.dispose w)
      (fun () -> attempt_tasks_body ~spec ~locking w probe pay ~sched_seed ~progs ~trip)
  end

(* ---------------- one multi-task trial ---------------- *)

type traw = {
  tb_progs : Gen.op list array;
  tb_sched_seed : int;
  tb_boundaries : int;
  tb_ordinal : int option;  (** [None]: the interleaving alone failed. *)
  tb_crasher : (int * int) option;
  tb_problems : string list;
}

type toutcome = TClean of int | TBad of traw

let fuzz_one_tasks ?(prefer = []) ?(with_cov = false) ~spec ~locking ~tasks ~world_seed ~max_ops
    ~prng_seed () =
  let prng = Prng.create ~seed:prng_seed in
  let progs =
    Array.of_list
      (Gen.generate_tasks ~prng ~spec_of:Program.task_gen_spec ~ops_per_task:max_ops tasks)
  in
  let sched_seed = Prng.int prng 0x40000000 in
  let counting =
    run_attempt_tasks ~spec ~locking ~seed:world_seed ~sched_seed ~progs ~trip:(-1) ()
  in
  let cov = if with_cov then Some (Cov.create ()) else None in
  Option.iter (fun c -> Cov.note_schedule c ~labels:counting.t_labels) cov;
  if counting.t_problems <> [] then
    ( TBad
        {
          tb_progs = progs;
          tb_sched_seed = sched_seed;
          tb_boundaries = counting.t_boundaries;
          tb_ordinal = None;
          tb_crasher = None;
          tb_problems = counting.t_problems;
        },
      cov )
  else if counting.t_boundaries = 0 then (TClean 0, cov)
  else begin
    let r = pick_boundary prng ~prefer counting.t_labels in
    let a = run_attempt_tasks ~spec ~locking ~seed:world_seed ~sched_seed ~progs ~trip:r () in
    let reached = a.t_crasher <> None || a.t_raised <> None in
    let problems =
      if not reached then [ Printf.sprintf "crash point %d was not reached on replay" r ]
      else a.t_problems
    in
    Option.iter
      (fun c ->
        let outcome =
          if not reached then Cov.Unreached
          else if problems = [] then Cov.Survived
          else Cov.Violated
        in
        let cls = Cov.label_class (List.nth counting.t_labels r) in
        match a.t_crasher with
        | Some (ci, ck) ->
          Cov.record c ~task:"crasher" ~cls ~op:(Gen.kind (List.nth progs.(ci) ck)) ~ordinal:r
            outcome;
          Array.iteri
            (fun i p ->
              if i <> ci then
                match p with
                | Program.Interrupted k ->
                  Cov.record c ~task:"bystander" ~cls
                    ~op:(Gen.kind (List.nth progs.(i) k))
                    ~ordinal:r outcome
                | Program.Completed _ -> ())
            a.t_progress
        | None -> ())
      cov;
    if problems = [] then (TClean counting.t_boundaries, cov)
    else
      ( TBad
          {
            tb_progs = progs;
            tb_sched_seed = sched_seed;
            tb_boundaries = counting.t_boundaries;
            tb_ordinal = Some r;
            tb_crasher = a.t_crasher;
            tb_problems = problems;
          },
        cov )
  end

(* ---------------- the multi-task shrinker ---------------- *)

(* Delta-debugging over three axes now: empty out whole bystander tasks,
   drop single ops, walk the crash ordinal down. Removing ANY op changes
   the scheduler's candidate sets and therefore the whole interleaving,
   so — unlike the single-task shrinker — every candidate is re-counted
   and the ordinal remapped into the crasher's in-flight op's new
   boundary window (same offset first). Two failure flavors:
   - crash flavor ([ordinal = Some r]): candidate fails if tripping at a
     remapped ordinal still crashes and still breaks a contract;
   - no-crash flavor ([ordinal = None]): candidate fails if the counting
     run alone still raises or fails its final audit. *)

let total_ops progs = Array.fold_left (fun a ops -> a + List.length ops) 0 progs
let nonempty_tasks progs = Array.fold_left (fun a ops -> a + if ops = [] then 0 else 1) 0 progs

let shrink_tasks ~spec ~locking ~world_seed ~sched_seed ~progs ~ordinal ~crasher =
  let budget = ref shrink_budget in
  let attempts = ref 0 in
  let spend () =
    incr attempts;
    decr budget
  in
  let count progs =
    spend ();
    match run_attempt_tasks ~spec ~locking ~seed:world_seed ~sched_seed ~progs ~trip:(-1) () with
    | a -> Some a
    | exception Invalid_program -> None
  in
  let fails_at progs r =
    spend ();
    match run_attempt_tasks ~spec ~locking ~seed:world_seed ~sched_seed ~progs ~trip:r () with
    | a -> (a.t_crasher <> None || a.t_raised <> None) && a.t_problems <> []
    | exception Invalid_program -> false
  in
  let fails_nocrash progs =
    match count progs with None -> false | Some a -> a.t_problems <> []
  in
  let nt = Array.length progs in
  match (ordinal, crasher) with
  | None, _ ->
    (* No-crash flavor: the predicate is one counting run. *)
    let cur = ref progs in
    let changed = ref true in
    while !changed && !budget > 0 do
      changed := false;
      for i = 0 to nt - 1 do
        if !cur.(i) <> [] && !budget > 0 then begin
          let cand = Array.copy !cur in
          cand.(i) <- [];
          if fails_nocrash cand then begin
            cur := cand;
            changed := true
          end
        end
      done;
      let rec drop_at i j =
        if !budget > 0 && j < List.length !cur.(i) then begin
          let cand = Array.copy !cur in
          cand.(i) <- remove_at j !cur.(i);
          if fails_nocrash cand then begin
            cur := cand;
            changed := true;
            drop_at i j
          end
          else drop_at i (j + 1)
        end
      in
      for i = 0 to nt - 1 do
        drop_at i 0
      done
    done;
    (!cur, None, !attempts)
  | Some r0, None ->
    (* Crashed but unattributed (should not happen): nothing safe to do. *)
    (progs, Some r0, !attempts)
  | Some r0, Some (c, k0) ->
    let cur = ref progs and r = ref r0 and k = ref k0 in
    let off = ref 0 in
    (match count !cur with
    | Some a0 ->
      let lo, _ = a0.t_bounds.(c).(k0) in
      if lo >= 0 then off := r0 - lo
    | None -> ());
    (* Re-count a candidate and look for a failing ordinal inside the
       crasher op's new boundary window, preferring the same offset. *)
    let try_remap cand ~k:k' =
      if !budget <= 0 then None
      else
        match count cand with
        | None -> None
        | Some a ->
          if k' < 0 || k' >= Array.length a.t_bounds.(c) then None
          else begin
            let lo, hi = a.t_bounds.(c).(k') in
            if lo < 0 || hi <= lo then None
            else begin
              let prefer = lo + !off in
              let range = List.init (hi - lo) (fun j -> lo + j) in
              let ordered =
                if prefer >= lo && prefer < hi then
                  prefer :: List.filter (fun x -> x <> prefer) range
                else range
              in
              match List.find_opt (fun r' -> !budget > 0 && fails_at cand r') ordered with
              | Some r' -> Some (r', lo)
              | None -> None
            end
          end
    in
    let adopt cand k' (r', lo) =
      cur := cand;
      k := k';
      r := r';
      off := r' - lo
    in
    (* Initial truncation: drop every op no task had started at the crash
       (one trip run tells us where each task stood). *)
    (spend ();
     match
       run_attempt_tasks ~spec ~locking ~seed:world_seed ~sched_seed ~progs:!cur ~trip:!r ()
     with
     | a ->
       let cand =
         Array.mapi
           (fun i ops ->
             let keep =
               match a.t_progress.(i) with
               | Program.Completed n -> n
               | Program.Interrupted kk -> kk + 1
             in
             List.filteri (fun j _ -> j < keep) ops)
           !cur
       in
       if cand <> !cur then (
         match try_remap cand ~k:!k with
         | Some hit -> adopt cand !k hit
         | None -> ())
     | exception Invalid_program -> ());
    let changed = ref true in
    while !changed && !budget > 0 do
      changed := false;
      for i = 0 to nt - 1 do
        if i <> c && !cur.(i) <> [] && !budget > 0 then begin
          let cand = Array.copy !cur in
          cand.(i) <- [];
          match try_remap cand ~k:!k with
          | Some hit ->
            adopt cand !k hit;
            changed := true
          | None -> ()
        end
      done;
      let rec drop_at i j =
        if !budget > 0 && j < List.length !cur.(i) then begin
          if i = c && j = !k then drop_at i (j + 1)
          else begin
            let cand = Array.copy !cur in
            cand.(i) <- remove_at j !cur.(i);
            let k' = if i = c && j < !k then !k - 1 else !k in
            match try_remap cand ~k:k' with
            | Some hit ->
              adopt cand k' hit;
              changed := true;
              drop_at i j
            | None -> drop_at i (j + 1)
          end
        end
      in
      for i = 0 to nt - 1 do
        drop_at i 0
      done
    done;
    (* Finally walk the ordinal down within the fixed program. *)
    let rec scan r' =
      if r' < !r && !budget > 0 then
        if fails_at !cur r' then r := r' else scan (r' + 1)
    in
    scan 0;
    (!cur, Some !r, !attempts)

(* ---------------- multi-task reports ---------------- *)

type tcounterexample = {
  tc_trial : int;
  tc_original_ops : int;  (** Total ops across tasks before shrinking. *)
  tc_progs : Gen.op list array;  (** Shrunk; empty lists = shrunk-away tasks. *)
  tc_sched_seed : int;
  tc_ordinal : int option;  (** [None]: no crash needed (interleaving alone). *)
  tc_crasher : (int * int) option;
  tc_label : string option;
  tc_problems : string list;
  tc_shrink_attempts : int;
}

type treport = {
  tr_spec : Explorer.spec;
  tr_locking : bool;
  tr_seed : int;
  tr_tasks : int;
  tr_trials : int;
  tr_max_ops : int;
  tr_boundaries : int;
  tr_violations : int;
  tr_counterexamples : tcounterexample list;
  tr_coverage : Cov.t option;
}

let tshrink_and_describe ~spec ~locking ~world_seed (t, v) =
  let progs, ordinal, shrink_attempts =
    shrink_tasks ~spec ~locking ~world_seed ~sched_seed:v.tb_sched_seed ~progs:v.tb_progs
      ~ordinal:v.tb_ordinal ~crasher:v.tb_crasher
  in
  (* Replay the minimum once for the final attribution. *)
  let final =
    match
      run_attempt_tasks ~spec ~locking ~seed:world_seed ~sched_seed:v.tb_sched_seed ~progs
        ~trip:(match ordinal with Some r -> r | None -> -1) ()
    with
    | a -> Some a
    | exception Invalid_program -> None
  in
  let problems =
    match final with Some a when a.t_problems <> [] -> a.t_problems | _ -> v.tb_problems
  in
  {
    tc_trial = t;
    tc_original_ops = total_ops v.tb_progs;
    tc_progs = progs;
    tc_sched_seed = v.tb_sched_seed;
    tc_ordinal = ordinal;
    tc_crasher = (match final with Some a when ordinal <> None -> a.t_crasher | _ -> None);
    tc_label = (match final with Some a -> a.t_tripped | None -> None);
    tc_problems = problems;
    tc_shrink_attempts = shrink_attempts;
  }

let run_tasks ?(spec = Explorer.rio_prot) ?(locking = true) ?(max_ops = default_max_ops)
    ?(shrink_limit = 3) ~tasks (cfg : Run.config) =
  let world_seed = cfg.Run.seed in
  let report_done = Run.reporter cfg ~total:cfg.Run.trials in
  let with_cov = cfg.Run.coverage in
  let run_round ~prefer ts =
    Pool.map_list ~domains:cfg.Run.domains
      (fun t ->
        let out, tcov =
          fuzz_one_tasks ~prefer ~with_cov ~spec ~locking ~tasks ~world_seed ~max_ops
            ~prng_seed:((world_seed * 0x1000003) + t) ()
        in
        report_done ~label:spec.Explorer.label ~detail:(Printf.sprintf "trial %d" t);
        (t, out, tcov))
      ts
  in
  let cov = if with_cov then Some (Cov.create ()) else None in
  let outcomes =
    match cov with
    | None ->
      List.map (fun (t, o, _) -> (t, o)) (run_round ~prefer:[] (List.init cfg.Run.trials Fun.id))
    | Some c ->
      let acc = ref [] in
      let rec rounds start =
        if start < cfg.Run.trials then begin
          let stop = min cfg.Run.trials (start + coverage_round) in
          let res =
            run_round ~prefer:(Cov.unhit_classes c) (List.init (stop - start) (fun i -> start + i))
          in
          List.iter (fun (_, _, tcov) -> Option.iter (fun s -> Cov.merge ~into:c s) tcov) res;
          acc := List.rev_append (List.map (fun (t, o, _) -> (t, o)) res) !acc;
          rounds stop
        end
      in
      rounds 0;
      List.rev !acc
  in
  let boundaries =
    List.fold_left
      (fun acc (_, o) -> acc + match o with TClean b -> b | TBad v -> v.tb_boundaries)
      0 outcomes
  in
  let bad =
    List.filter_map (fun (t, o) -> match o with TBad v -> Some (t, v) | _ -> None) outcomes
  in
  let to_shrink = List.filteri (fun i _ -> i < shrink_limit) bad in
  let counterexamples =
    Pool.map_list ~domains:cfg.Run.domains (tshrink_and_describe ~spec ~locking ~world_seed)
      to_shrink
  in
  Option.iter
    (fun c -> List.iter (fun cx -> Cov.add_shrink c cx.tc_shrink_attempts) counterexamples)
    cov;
  {
    tr_spec = spec;
    tr_locking = locking;
    tr_seed = cfg.Run.seed;
    tr_tasks = tasks;
    tr_trials = cfg.Run.trials;
    tr_max_ops = max_ops;
    tr_boundaries = boundaries;
    tr_violations = List.length bad;
    tr_counterexamples = counterexamples;
    tr_coverage = cov;
  }

let render_tcounterexample buf c =
  Buffer.add_string buf
    (Printf.sprintf
       "\ncounterexample (trial %d): shrunk %d ops -> %d ops over %d tasks (sched seed %d, %d runs)\n"
       c.tc_trial c.tc_original_ops (total_ops c.tc_progs) (nonempty_tasks c.tc_progs)
       c.tc_sched_seed c.tc_shrink_attempts);
  Array.iteri
    (fun i ops ->
      if ops <> [] then begin
        Buffer.add_string buf (Printf.sprintf "  task t%d:\n" i);
        List.iteri
          (fun j op ->
            let mark =
              match c.tc_crasher with
              | Some (ci, ck) when ci = i && ck = j -> "   <- in flight at the crash"
              | _ -> ""
            in
            Buffer.add_string buf (Printf.sprintf "    %d. %s%s\n" (j + 1) (Gen.describe op) mark))
          ops
      end)
    c.tc_progs;
  (match c.tc_ordinal with
  | Some r ->
    Buffer.add_string buf
      (Printf.sprintf "  crash at boundary %d (%s)\n" r
         (Option.value c.tc_label ~default:"?"))
  | None -> Buffer.add_string buf "  no crash injected: the interleaving alone fails\n");
  List.iter (fun p -> Buffer.add_string buf ("  problem: " ^ p ^ "\n")) c.tc_problems

let render_tasks r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "interleaving fuzz: %s, %d tasks, locking %s\n" (spec_line r.tr_spec)
       r.tr_tasks
       (if r.tr_locking then "on" else "off"));
  Buffer.add_string buf
    (Printf.sprintf "  seed %d, %d trials of <= %d ops per task, %d boundaries enumerated\n"
       r.tr_seed r.tr_trials r.tr_max_ops r.tr_boundaries);
  Buffer.add_string buf
    (if r.tr_violations = 0 then "  violations: 0\n"
     else
       Printf.sprintf "  violations: %d (%d shrunk below)\n" r.tr_violations
         (List.length r.tr_counterexamples));
  List.iter (fun c -> render_tcounterexample buf c) r.tr_counterexamples;
  Buffer.contents buf

let tcounterexample_json c =
  Json.Obj
    [
      ("trial", Json.Int c.tc_trial);
      ("original_ops", Json.Int c.tc_original_ops);
      ( "tasks",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun ops -> Json.Arr (List.map (fun op -> Json.Str (Gen.describe op)) ops))
                c.tc_progs)) );
      ("sched_seed", Json.Int c.tc_sched_seed);
      ("ordinal", match c.tc_ordinal with Some r -> Json.Int r | None -> Json.Null);
      ( "crasher",
        match c.tc_crasher with
        | Some (i, k) -> Json.Arr [ Json.Int i; Json.Int k ]
        | None -> Json.Null );
      ("label", match c.tc_label with Some l -> Json.Str l | None -> Json.Null);
      ("problems", Json.Arr (List.map (fun p -> Json.Str p) c.tc_problems));
      ("shrink_attempts", Json.Int c.tc_shrink_attempts);
    ]

let treport_json r =
  Json.Obj
    ([
       ("spec", Explorer.spec_json r.tr_spec);
       ("locking", Json.Bool r.tr_locking);
       ("seed", Json.Int r.tr_seed);
       ("tasks", Json.Int r.tr_tasks);
       ("trials", Json.Int r.tr_trials);
       ("max_ops", Json.Int r.tr_max_ops);
       ("boundaries", Json.Int r.tr_boundaries);
       ("violations", Json.Int r.tr_violations);
       ("counterexamples", Json.Arr (List.map tcounterexample_json r.tr_counterexamples));
     ]
    @ match r.tr_coverage with Some cov -> [ ("coverage", Cov.to_json cov) ] | None -> [])

(* The multi-task acceptance bar, mirroring [run_matrix]: with locking the
   campaign must be clean; without it (the lost-update ablation) it must
   be caught with a readable repro — at most [max_repro_ops] total ops
   over at most two non-empty tasks. *)
let tasks_caught r =
  r.tr_violations > 0
  && List.exists
       (fun c ->
         total_ops c.tc_progs <= max_repro_ops
         && nonempty_tasks c.tc_progs <= 2
         && c.tc_problems <> [])
       r.tr_counterexamples
