lib/mem/layout.ml: Format List Phys_mem Rio_util
