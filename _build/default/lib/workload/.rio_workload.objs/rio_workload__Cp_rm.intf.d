lib/workload/cp_rm.mli: Rio_fs
