examples/bank_transfer.ml: Array Bytes Int64 Option Printf Rio_core Rio_fs Rio_kernel Rio_sim Rio_txn
