test/test_fault.ml: Alcotest Bytes List QCheck QCheck_alcotest Rio_cpu Rio_fault Rio_fs Rio_kernel Rio_mem Rio_sim Rio_util
