module Campaign = Rio_fault.Campaign
module Fault_type = Rio_fault.Fault_type
module Table = Rio_util.Table
module Pool = Rio_parallel.Pool
module Trace = Rio_obs.Trace
module Export = Rio_obs.Export
module Json = Rio_util.Json

type cell = {
  crashes : int;
  attempts : int;
  corruptions : int;
  corrupt_paths : int;
  protection_traps : int;
  checksum_detections : int;
}

type results = {
  crashes_per_cell : int;
  cells : (Campaign.system * Fault_type.t * cell) list;
  unique_messages : int;
  unique_consistency_messages : int;
  metrics : Trace.snapshot option;
}

let cell_seed ~seed_base system fault =
  let sys_id =
    match system with
    | Campaign.Disk_based -> 1
    | Campaign.Rio_without_protection -> 2
    | Campaign.Rio_with_protection -> 3
  in
  seed_base + (sys_id * 1_000_000) + (Fault_type.id fault * 10_000)

(* One (system, fault) cell: run crash tests until [crashes_per_cell] of
   them crash. Every trial builds its own engine, kernel, disk, and PRNG
   from the cell's deterministic seed, so a cell is an isolated unit of
   work — this is the task the domain pool schedules. The cell's crash
   messages are returned (in attempt order) rather than written into a
   shared table, so workers never touch common mutable state. *)
let cell_label system fault =
  Printf.sprintf "%s/%s" (Campaign.system_slug system) (Fault_type.slug fault)

(* Per-trial JSONL header: enough to replay the trial by hand. *)
let trial_header system fault ~seed =
  Json.Obj
    [
      ("system", Json.Str (Campaign.system_slug system));
      ("fault", Json.Str (Fault_type.slug fault));
      ("seed", Json.Int seed);
    ]

let run_cell config ~crashes_per_cell ~seed_base ~trace_dir ~mk_obs ~report (system, fault) =
  let crashes = ref 0
  and attempts = ref 0
  and corruptions = ref 0
  and paths = ref 0
  and traps = ref 0
  and cksum = ref 0
  and messages = ref []
  and snapshots = ref [] in
  let base = cell_seed ~seed_base system fault in
  (* Cap attempts so a pathological non-crashing cell terminates. *)
  let max_attempts = crashes_per_cell * 25 in
  while !crashes < crashes_per_cell && !attempts < max_attempts do
    incr attempts;
    let seed = base + !attempts in
    (* One recorder per trial: trials stay isolated, so traces and metric
       snapshots are identical at any [-j]. With coverage on but tracing
       off, [mk_obs] yields a metrics-only recorder (capacity 0). *)
    let obs = mk_obs () in
    let o = Campaign.run_one ~obs config system fault ~seed in
    if Trace.enabled obs then snapshots := Trace.snapshot obs :: !snapshots;
    (match trace_dir with
    | Some dir ->
      if not o.Campaign.discarded then
        Export.write_jsonl
          ~file:
            (Filename.concat dir
               (Printf.sprintf "%s__%s__seed%d.jsonl" (Campaign.system_slug system)
                  (Fault_type.slug fault) seed))
          ~header:(trial_header system fault ~seed) obs
    | None -> ());
    if not o.Campaign.discarded then begin
      incr crashes;
      (match o.Campaign.crash_message with
      | Some m -> messages := m :: !messages
      | None -> ());
      if o.Campaign.corrupted then begin
        incr corruptions;
        paths := !paths + o.Campaign.corrupt_paths
      end;
      if o.Campaign.protection_trap then incr traps;
      if o.Campaign.checksum_detected then incr cksum
    end
  done;
  report ~label:(cell_label system fault)
    ~detail:
      (Printf.sprintf "%d crashes in %d attempts, %d corruptions" !crashes !attempts
         !corruptions);
  ( system,
    fault,
    {
      crashes = !crashes;
      attempts = !attempts;
      corruptions = !corruptions;
      corrupt_paths = !paths;
      protection_traps = !traps;
      checksum_detections = !cksum;
    },
    List.rev !messages,
    (match !snapshots with
    | [] -> None
    | snaps -> Some (Trace.merge_snapshots (List.rev snaps))) )

let run ?(campaign = Campaign.default_config) ?(systems = Campaign.all_systems)
    ?(faults = Fault_type.all) (cfg : Run.config) =
  let crashes_per_cell = cfg.Run.trials in
  let seed_base = cfg.Run.seed in
  let trace_dir = cfg.Run.trace_dir in
  let tasks =
    List.concat_map (fun system -> List.map (fun fault -> (system, fault)) faults) systems
  in
  (match trace_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | Some _ | None -> ());
  (* With [trace_dir] every trial gets a full ring (sized by the config's
     observability knobs); with only [coverage] on, a metrics-only
     recorder — counters and histograms roll up, no events retained. *)
  let mk_obs =
    if trace_dir <> None then Run.recorder cfg
    else if cfg.Run.coverage then fun () -> Trace.create ~capacity:0 ()
    else fun () -> Trace.null
  in
  let report = Run.reporter cfg ~total:(List.length tasks) in
  let with_messages =
    Pool.map_list ~domains:cfg.Run.domains
      (run_cell campaign ~crashes_per_cell ~seed_base ~trace_dir ~mk_obs ~report)
      tasks
  in
  (* Merge per-cell message lists in seed order; the table is a set, so
     the totals match the serial run exactly. *)
  let messages = Hashtbl.create 64 in
  List.iter
    (fun (_, _, _, ms, _) -> List.iter (fun m -> Hashtbl.replace messages m ()) ms)
    with_messages;
  let cells = List.map (fun (s, f, c, _, _) -> (s, f, c)) with_messages in
  let consistency =
    Hashtbl.fold
      (fun m () acc -> if String.length m >= 6 && String.sub m 0 6 = "panic:" then acc + 1 else acc)
      messages 0
  in
  let metrics =
    if trace_dir = None && not cfg.Run.coverage then None
    else
      (* Cell snapshots merge in task (seed) order, so the aggregate is
         deterministic at any [-j]. *)
      Some
        (Trace.merge_snapshots
           (List.filter_map (fun (_, _, _, _, snap) -> snap) with_messages))
  in
  {
    crashes_per_cell;
    cells;
    unique_messages = Hashtbl.length messages;
    unique_consistency_messages = consistency;
    metrics;
  }

(* Crash-message census: run mixed fault types until [crashes] crashes and
   tally the distinct console messages — the paper's "74 unique error
   messages, including 59 different kernel consistency error messages". *)
let message_census ?(config = Campaign.default_config) ~crashes ~seed_base () =
  let tally = Hashtbl.create 64 in
  let seen = ref 0 in
  let attempt = ref 0 in
  let faults = Array.of_list Fault_type.all in
  while !seen < crashes && !attempt < crashes * 30 do
    incr attempt;
    let fault = faults.(!attempt mod Array.length faults) in
    let o =
      Campaign.run_one config Campaign.Rio_without_protection fault ~seed:(seed_base + !attempt)
    in
    match o.Campaign.crash_message with
    | Some m when not o.Campaign.discarded ->
      incr seen;
      Hashtbl.replace tally m (1 + Option.value ~default:0 (Hashtbl.find_opt tally m))
    | Some _ | None -> ()
  done;
  List.sort
    (fun (_, a) (_, b) -> compare b a)
    (Hashtbl.fold (fun m c acc -> (m, c) :: acc) tally [])

let cell results system fault =
  match
    List.find_opt (fun (s, f, _) -> s = system && f = fault) results.cells
  with
  | Some (_, _, c) -> c
  | None ->
    { crashes = 0; attempts = 0; corruptions = 0; corrupt_paths = 0; protection_traps = 0;
      checksum_detections = 0 }

let system_total results system =
  List.fold_left
    (fun (corr, crashes) (s, _, c) ->
      if s = system then (corr + c.corruptions, crashes + c.crashes) else (corr, crashes))
    (0, 0) results.cells

let corruption_rate results system =
  let corr, crashes = system_total results system in
  Rio_util.Stats.binomial_rate corr crashes

let mttf_years ~corruption_rate =
  if corruption_rate <= 0. then Float.infinity
  else Paper_data.crash_interval_months /. 12. /. corruption_rate

let systems_of results =
  List.sort_uniq compare (List.map (fun (s, _, _) -> s) results.cells)

let faults_of results =
  let faults = List.sort_uniq compare (List.map (fun (_, f, _) -> f) results.cells) in
  (* Preserve Table 1 row order. *)
  List.filter (fun f -> List.mem f faults) Fault_type.all

let to_table results =
  let systems = systems_of results in
  let columns =
    ("Fault Type", Table.Left)
    :: List.map (fun s -> (Campaign.system_name s, Table.Right)) systems
  in
  let table = Table.create ~columns in
  List.iter
    (fun fault ->
      Table.add_row table
        (Fault_type.name fault
        :: List.map (fun s -> Table.cell_int (cell results s fault).corruptions) systems))
    (faults_of results);
  Table.add_separator table;
  Table.add_row table
    ("Total"
    :: List.map
         (fun s ->
           let corr, crashes = system_total results s in
           Printf.sprintf "%d of %d (%.1f%%)" corr crashes
             (100. *. Rio_util.Stats.binomial_rate corr crashes))
         systems);
  table

let comparison_table results =
  let table =
    Table.create
      ~columns:
        [
          ("Quantity", Table.Left);
          ("Paper", Table.Right);
          ("Measured", Table.Right);
        ]
  in
  let p_disk, p_noprot, p_prot = Paper_data.table1_totals in
  let n = Paper_data.table1_total_crashes_per_system in
  let add_system label system paper_corr =
    let corr, crashes = system_total results system in
    let lo, hi = Rio_util.Stats.wilson_interval corr crashes in
    Table.add_row table
      [
        label ^ " corruption rate";
        Printf.sprintf "%d/%d (%.1f%%)" paper_corr n (100. *. float_of_int paper_corr /. float_of_int n);
        Printf.sprintf "%d/%d (%.1f%%, CI %.1f-%.1f%%)" corr crashes
          (100. *. Rio_util.Stats.binomial_rate corr crashes)
          (100. *. lo) (100. *. hi);
      ]
  in
  let systems = systems_of results in
  if List.mem Campaign.Disk_based systems then
    add_system "disk-based" Campaign.Disk_based p_disk;
  if List.mem Campaign.Rio_without_protection systems then
    add_system "rio w/o protection" Campaign.Rio_without_protection p_noprot;
  if List.mem Campaign.Rio_with_protection systems then
    add_system "rio w/ protection" Campaign.Rio_with_protection p_prot;
  if List.mem Campaign.Disk_based systems then
    Table.add_row table
      [
        "MTTF disk-based (years)";
        Printf.sprintf "%.0f" Paper_data.mttf_disk_years;
        Printf.sprintf "%.1f" (mttf_years ~corruption_rate:(corruption_rate results Campaign.Disk_based));
      ];
  if List.mem Campaign.Rio_without_protection systems then
    Table.add_row table
      [
        "MTTF rio w/o protection (years)";
        Printf.sprintf "%.0f" Paper_data.mttf_rio_noprot_years;
        Printf.sprintf "%.1f"
          (mttf_years ~corruption_rate:(corruption_rate results Campaign.Rio_without_protection));
      ];
  let p_or, p_init = Paper_data.protection_trap_invocations in
  let measured_traps =
    List.fold_left
      (fun acc (s, _, c) ->
        if s = Campaign.Rio_with_protection then acc + c.protection_traps else acc)
      0 results.cells
  in
  Table.add_row table
    [
      "protection traps invoked";
      Printf.sprintf "%d (%d overrun + %d init)" (p_or + p_init) p_or p_init;
      string_of_int measured_traps;
    ];
  Table.add_row table
    [
      "unique crash messages";
      "74 (59 consistency)";
      Printf.sprintf "%d (%d consistency)" results.unique_messages
        results.unique_consistency_messages;
    ];
  table
