lib/kernel/kernel.ml: Array Bytes Char Kcrash Kheap List Rio_cpu Rio_disk Rio_fs Rio_kasm Rio_mem Rio_sim Rio_util Rio_vm
