lib/fs/ondisk.ml: Array Bytes Char Fs_types Int32 Int64 List String
