(** The simulated operating system kernel.

    Composes the machine (memory, MMU, interpreted CPU), the disk, the
    kernel heap, the synthetic kernel-routine corpus, and the file system
    into one bootable system — the thing the crash campaign boots, runs,
    faults, and crashes 1950 times.

    Two execution worlds share the same physical memory:

    - {b Native}: file-system semantics (OCaml), charging simulated time.
    - {b Interpreted}: the kernel activity — short bursts of {!Rio_kasm}
      routines run between workload operations, plus the bcopy data path's
      fault envelope. Wild stores from this world are what corrupt memory,
      and what Rio's protection traps.

    The behavioral faults of §3.1 that cannot be expressed as text mutations
    are armed here: copy overrun (bcopy writes too many bytes, checked
    against the MMU so protection can catch it), allocation faults
    (premature free of an in-use node), and synchronization faults (lock
    acquire/release skipped). *)

type t

type config = {
  layout_config : Rio_mem.Layout.config;
  tlb_entries : int;
  disk_sectors : int;
  disk_backend : Rio_disk.Backend.kind;
      (** Which persistence backend {!boot} creates (default SCSI). *)
  seed : int;
  instr_ns : int;  (** Simulated cost of one interpreted instruction. *)
  activity_budget : int;
      (** Instruction budget per activity routine; exhaustion = hang. *)
}

val default_config : config
(** 16 MB machine, 64-entry TLB, 64K-sector (32 MB) SCSI disk, 6 ns/instr. *)

val config_with_seed : int -> config

val boot : engine:Rio_sim.Engine.t -> costs:Rio_sim.Costs.t -> config -> t
(** Create memory/MMU/CPU/disk, load the kernel text, build heap
    structures. The disk is blank: call {!format} (or reuse a disk via
    {!boot_on_disk}). *)

val boot_on_disk : engine:Rio_sim.Engine.t -> costs:Rio_sim.Costs.t -> config -> disk:Rio_disk.Disk.t -> t
(** Boot against an existing disk (cold reboot after a crash: fresh
    memory). *)

val boot_warm :
  engine:Rio_sim.Engine.t ->
  costs:Rio_sim.Costs.t ->
  config ->
  mem:Rio_mem.Phys_mem.t ->
  disk:Rio_disk.Disk.t ->
  t
(** Warm reboot: reuse the surviving physical memory (the DEC Alpha reset
    path that preserves DRAM, §5). Only the kernel-text and heap regions
    are reinitialized. *)

(** {1 Accessors} *)

val engine : t -> Rio_sim.Engine.t

(** The flight recorder inherited from the engine at boot
    ({!Rio_obs.Trace.null} when tracing is off). *)
val obs : t -> Rio_obs.Trace.t
val costs : t -> Rio_sim.Costs.t
val mem : t -> Rio_mem.Phys_mem.t
val layout : t -> Rio_mem.Layout.t
val mmu : t -> Rio_vm.Mmu.t
val machine : t -> Rio_cpu.Machine.t
val disk : t -> Rio_disk.Disk.t
val kprogs : t -> Rio_kasm.Kprogs.t
val heap : t -> Kheap.t
val hooks : t -> Rio_fs.Hooks.t
val pool_alloc : t -> Rio_mem.Page_alloc.t
val meta_alloc : t -> Rio_mem.Page_alloc.t
val prng : t -> Rio_util.Prng.t

val owned_pool_pages : t -> int list
(** Pool pages currently held as kernel buffers (not file cache). *)

val overrun_filecache_bytes : t -> int
(** Bytes that armed copy overruns have written into file-cache regions
    (fault-propagation tracing). *)

(** {1 File system} *)

val format : t -> unit
(** mkfs with a geometry derived from the machine (swap covers memory). *)

val mount : ?wb_unordered:bool -> t -> policy:Rio_fs.Fs.policy -> Rio_fs.Fs.t
(** Mount through the kernel's hooks (so the bcopy fault envelope applies);
    remembers the fs for the panic path. [wb_unordered] (default false)
    plants the write-behind ordering bug for the fuzzer's ablation matrix
    — see {!Rio_fs.Fs.mount}. *)

val fs : t -> Rio_fs.Fs.t option

(** {1 Kernel activity} *)

val run_activity : t -> unit
(** One burst of interpreted kernel work (a few hundred to a few thousand
    instructions). Raises {!Kcrash.Crashed} if the machine traps or hangs. *)

val activity_bursts : t -> int

(** {1 Fault arming (used by the injector)} *)

val arm_copy_overrun : t -> period:int -> unit
(** Every ~[period] bcopy calls, overrun by the paper's length distribution
    (50% 1 byte, 44% 2–1024, 6% 2 KB–4 KB). *)

val arm_allocation_fault : t -> period:int -> unit
(** Every ~[period] allocations, prematurely free the block 0–256 ms
    later. *)

val arm_sync_fault : t -> period:int -> unit
(** Every ~[period] lock operations, skip the acquire or the release. *)

val disarm_faults : t -> unit

(** {1 Crash lifecycle} *)

val crash_now : t -> Kcrash.cause -> during:string -> 'a
(** Raise {!Kcrash.Crashed} stamped with the current simulated time. *)

val crash_system : t -> Kcrash.info -> unit
(** Handle a caught crash: record it, run the panic path (non-Rio policies
    attempt to flush dirty buffers, propagating any corruption to disk —
    Rio's modified panic does not, §2.3), then fail the in-flight disk
    request. The kernel is dead afterwards. *)

val crash_info : t -> Kcrash.info option

val crash_flushed : t -> int * int
(** [(data, meta)]: buffers the panic path pushed to disk across every
    {!crash_system} this kernel has handled — the crash-propagation
    channel. Each crash also emits a {!Rio_obs.Trace.Crash_flush} event
    with the per-crash counts so forensics can attribute propagated
    corruption. *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture everything kernel-side a trial mutates: the kernel PRNG, the
    MMU (PTE bits, TLB, ABOX), the CPU register file, both page
    allocators, the mounted-fs handle, the activity/fault bookkeeping.
    The heap, stack frame, and descriptor live in simulated memory and
    rewind with the memory snapshot; the file system and disk have their
    own checkpoints. *)

val restore : t -> checkpoint -> unit
(** Rewind to a checkpoint of the same boot, clearing any recorded
    crash. *)
