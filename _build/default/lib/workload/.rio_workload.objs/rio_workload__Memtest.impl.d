lib/workload/memtest.ml: Bytes Hashtbl List Printf Rio_fs Rio_util String
