(** Applies fault instances to a booted kernel (§3.1).

    Text faults mutate the kernel-text instruction words in simulated
    memory through {!Rio_cpu.Isa}'s binary encoding — a mutated word may
    decode to a different well-formed instruction or to an illegal one,
    exactly as on real hardware. Heap/stack faults flip bits in those
    regions. The behavioral faults (allocation, copy overrun,
    synchronization) arm the kernel's periodic triggers. *)

val inject : Rio_kernel.Kernel.t -> prng:Rio_util.Prng.t -> Fault_type.t -> unit
(** Apply one fault instance. Idempotent arming for the behavioral types
    (repeated injection shortens the period, as more call sites are
    infected). *)

val inject_many : Rio_kernel.Kernel.t -> prng:Rio_util.Prng.t -> Fault_type.t -> count:int -> unit
(** The paper's "20 faults for each run". *)

(** {1 Exposed for tests} *)

val mutate_instruction :
  Rio_util.Prng.t -> Rio_cpu.Isa.t -> Fault_type.t -> Rio_cpu.Isa.t option
(** The pure instruction-mutation rules: what a given fault type does to a
    given instruction; [None] if the instruction is not a valid target. *)
