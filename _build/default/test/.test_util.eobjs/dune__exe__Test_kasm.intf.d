test/test_kasm.mli:
