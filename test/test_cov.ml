(* Tests for Rio_cov: crash-space coverage accounting. The load-bearing
   properties are (a) the cell model (label classing, ordinal bucketing)
   is stable, (b) merging is order-respecting bookkeeping so campaigns
   are byte-identical at any domain count — checked end-to-end through
   both the explorer and the fuzzer, text and JSON, (c) the fuzzer's
   unhit-class feedback actually reaches full class coverage, and (d)
   the Run-config observability knobs clamp out-of-range values and say
   so. *)

module Cov = Rio_cov.Cov
module Heatmap = Rio_cov.Heatmap
module Explorer = Rio_check.Explorer
module Fuzzer = Rio_fuzz.Fuzzer
module Run = Rio_harness.Run
module Trace = Rio_obs.Trace
module Json = Rio_util.Json

let check = Alcotest.check

(* ---------------- the cell model ---------------- *)

let test_label_class () =
  check Alcotest.string "store label" "store-copy" (Cov.label_class "store-copy p0x4000+512");
  check Alcotest.string "meta label" "meta-torn" (Cov.label_class "meta-torn p0x2000/lo");
  check Alcotest.string "spaceless label" "vista-commit-start"
    (Cov.label_class "vista-commit-start")

let test_bucketing () =
  List.iter
    (fun (ordinal, bucket) ->
      check Alcotest.int (Printf.sprintf "bucket of %d" ordinal) bucket
        (Cov.bucket_of_ordinal ordinal))
    [ (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4); (255, 8); (256, 9); (100000, 9) ];
  check Alcotest.string "first bucket" "0" (Cov.bucket_name 0);
  check Alcotest.string "last bucket open" "256+" (Cov.bucket_name (Cov.buckets - 1))

let test_record_and_merge () =
  let a = Cov.create () and b = Cov.create () in
  Cov.note_schedule a ~labels:[ "store-copy p1"; "store-copy p2"; "meta-torn p3/lo" ];
  Cov.record a ~cls:"store-copy" ~op:"creat" ~ordinal:0 Cov.Survived;
  Cov.note_schedule b ~labels:[ "store-copy p9" ];
  Cov.record b ~cls:"store-copy" ~op:"creat" ~ordinal:0 Cov.Violated;
  Cov.record b ~cls:"meta-torn" ~op:"rename" ~ordinal:300 Cov.Unreached;
  let m = Cov.merge_list [ a; b ] in
  check Alcotest.int "schedules" 2 (Cov.schedules m);
  check Alcotest.int "crash trials" 3 (Cov.crash_trials m);
  check Alcotest.int "violations" 1 (Cov.violations m);
  check Alcotest.int "unreached" 1 (Cov.unreached m);
  check Alcotest.int "boundaries" 4 (Cov.boundaries_enumerated m);
  check Alcotest.int "store-copy enumerated" 3 (Cov.enumerated_of_class m "store-copy");
  check Alcotest.int "cell sum" 2 (Cov.cell_by_op m ~cls:"store-copy" ~op:"creat");
  check Alcotest.int "bucketed cell" 1
    (Cov.cell_count m ~cls:"meta-torn" ~op:"rename" ~bucket:(Cov.bucket_of_ordinal 300));
  check (Alcotest.list Alcotest.string) "no unhit (both classes crashed)" []
    (Cov.unhit_classes m);
  (* An enumerated-only class is the definition of unhit. *)
  Cov.note_schedule m ~labels:[ "disk-complete s42" ];
  check (Alcotest.list Alcotest.string) "unhit" [ "disk-complete" ] (Cov.unhit_classes m)

let test_merge_is_order_sum () =
  (* Merge is pure sums, so left-to-right equals any grouping. *)
  let mk n =
    let c = Cov.create () in
    Cov.note_schedule c ~labels:[ Printf.sprintf "store-copy p%d" n ];
    Cov.record c ~cls:"store-copy" ~op:"creat" ~ordinal:n Cov.Survived;
    c
  in
  let parts = List.init 5 mk in
  let flat = Cov.merge_list parts in
  let nested = Cov.merge_list [ Cov.merge_list (List.filteri (fun i _ -> i < 2) parts);
                                Cov.merge_list (List.filteri (fun i _ -> i >= 2) parts) ] in
  check Alcotest.string "same JSON" (Json.to_string (Cov.to_json flat))
    (Json.to_string (Cov.to_json nested))

(* ---------------- campaign determinism ---------------- *)

let cov_exn = function
  | Some c -> c
  | None -> Alcotest.fail "coverage missing despite config.coverage"

let render_both cov = (Heatmap.render cov, Json.to_string (Cov.to_json cov))

let test_explorer_determinism () =
  let run domains =
    let r =
      Explorer.run ~spec:Explorer.rio_prot
        { Run.default with Run.seed = 7; domains; coverage = true }
    in
    render_both (cov_exn r.Explorer.coverage)
  in
  let text1, json1 = run 1 and text4, json4 = run 4 in
  check Alcotest.string "heatmap identical at -j1/-j4" text1 text4;
  check Alcotest.string "cov JSON identical at -j1/-j4" json1 json4

let test_fuzzer_determinism () =
  let run domains =
    let r =
      Fuzzer.run
        { Run.default with Run.seed = 3; trials = 40; domains; coverage = true }
    in
    render_both (cov_exn r.Fuzzer.coverage)
  in
  let text1, json1 = run 1 and text4, json4 = run 4 in
  check Alcotest.string "heatmap identical at -j1/-j4" text1 text4;
  check Alcotest.string "cov JSON identical at -j1/-j4" json1 json4

let test_fuzzer_feedback_full_coverage () =
  let r =
    Fuzzer.run { Run.default with Run.seed = 1; trials = 40; domains = 2; coverage = true }
  in
  let cov = cov_exn r.Fuzzer.coverage in
  check (Alcotest.list Alcotest.string) "every enumerated class crashed into" []
    (Cov.unhit_classes cov);
  check Alcotest.bool "schedules counted" true (Cov.schedules cov = 40)

let test_report_json_parses_back () =
  let r =
    Fuzzer.run { Run.default with Run.seed = 5; trials = 6; domains = 2; coverage = true }
  in
  let s = Json.to_string (Fuzzer.report_json r) in
  (match Json.parse s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fuzz report JSON does not parse back: %s" e);
  let e = Explorer.run { Run.default with Run.seed = 5; domains = 2; coverage = true } in
  match Json.parse (Json.to_string (Explorer.report_json e)) with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "check report JSON does not parse back: %s" err

(* ---------------- observability knobs ---------------- *)

let test_obs_clamping () =
  let cfg = { Run.default with Run.obs_capacity = Some (Trace.max_capacity * 2) } in
  check Alcotest.int "capacity clamped" Trace.max_capacity (Run.obs_capacity cfg);
  check Alcotest.bool "clamp reported" true (Run.obs_warnings cfg <> []);
  let cfg = { Run.default with Run.obs_capacity = Some (-5) } in
  check Alcotest.int "negative capacity clamps to 0" 0 (Run.obs_capacity cfg);
  let cfg = { Run.default with Run.obs_buckets = Some [| 5; 3; 3; -1 |] } in
  (match Run.obs_buckets cfg with
  | Some edges ->
    check (Alcotest.array Alcotest.int) "edges sanitized" [| 3; 5 |] edges
  | None -> Alcotest.fail "sanitized edges dropped entirely");
  check Alcotest.bool "sanitizing reported" true (Run.obs_warnings cfg <> []);
  let cfg = { Run.default with Run.obs_buckets = Some [| -1 |] } in
  check Alcotest.bool "all-invalid edges -> None" true (Run.obs_buckets cfg = None);
  check Alcotest.bool "defaults are clean" true (Run.obs_warnings Run.default = [])

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_bucketed_snapshot_json () =
  let obs = Trace.create ~capacity:0 () in
  let h = Trace.histogram obs "lat" in
  List.iter (Trace.observe h) [ 1; 5; 10; 50; 500 ];
  let s = Json.to_string (Trace.snapshot_json ~bucket_edges:[| 10; 100 |] (Trace.snapshot obs)) in
  (* <=10: three observations; (10,100]: one; >100: one. *)
  List.iter
    (fun fragment ->
      if not (contains ~sub:fragment s) then
        Alcotest.failf "snapshot JSON lacks %S in %s" fragment s)
    [ "\"buckets\""; "\"le\""; "+inf" ]

let () =
  Alcotest.run "cov"
    [
      ( "cells",
        [
          Alcotest.test_case "label classing" `Quick test_label_class;
          Alcotest.test_case "ordinal bucketing" `Quick test_bucketing;
          Alcotest.test_case "record and merge" `Quick test_record_and_merge;
          Alcotest.test_case "merge is grouping-independent" `Quick test_merge_is_order_sum;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "explorer coverage byte-identical at -j" `Slow
            test_explorer_determinism;
          Alcotest.test_case "fuzzer coverage byte-identical at -j" `Slow
            test_fuzzer_determinism;
          Alcotest.test_case "feedback reaches full class coverage" `Slow
            test_fuzzer_feedback_full_coverage;
          Alcotest.test_case "report JSON parses back" `Slow test_report_json_parses_back;
        ] );
      ( "obs knobs",
        [
          Alcotest.test_case "capacity and edges clamp with warnings" `Quick test_obs_clamping;
          Alcotest.test_case "snapshot JSON carries bucket counts" `Quick
            test_bucketed_snapshot_json;
        ] );
    ]
