(** Block checksums used by the Rio corruption detector.

    The paper (§3.2) maintains a checksum of each memory block in the file
    cache; unintentional stores leave the checksum inconsistent. We provide
    CRC-32 (IEEE 802.3 polynomial, table-driven) as the primary detector and
    Fletcher-32 as a cheaper alternative for the cost ablation. *)

val crc32 : ?init:int -> bytes -> pos:int -> len:int -> int
(** [crc32 b ~pos ~len] is the CRC-32 of the slice. [init] continues a prior
    checksum (default the standard [0] seed, pre/post-inverted
    internally). Result fits in 32 bits. *)

val crc32_string : string -> int
(** CRC-32 of a whole string. *)

val crc32_raw : bytes -> pos:int -> len:int -> int
(** The raw CRC register after processing the slice from register 0 —
    no init or final inversion. Linear over GF(2): [crc32_raw] of the
    byte-wise xor of two equal-length slices is the xor of their raw
    CRCs. Building block for incremental checksum updates. *)

val shift_zeros : int -> zeros:int -> int
(** [shift_zeros c ~zeros] is the CRC register after feeding [zeros]
    zero bytes starting from register [c] (computed in O(log zeros)
    via the GF(2) matrix of the zero-byte step). Together with
    [crc32_raw]: if messages [M] and [M'] of equal length differ only
    in a range ending [m] bytes before the end, then
    [crc32 M' = crc32 M lxor shift_zeros (crc32_raw D) ~zeros:m]
    where [D] is the xor of the old and new range bytes. *)

val fletcher32 : bytes -> pos:int -> len:int -> int
(** Fletcher-32 over the slice, treating bytes as 8-bit words. *)

type algorithm = Crc32 | Fletcher32

val compute : algorithm -> bytes -> pos:int -> len:int -> int
(** Dispatch on the algorithm. *)

val algorithm_name : algorithm -> string
