(** A cancellable priority queue of timed events (binary min-heap).

    Ties are broken by insertion order so simulations are deterministic. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> time:int -> 'a -> handle
(** Schedule a payload at an absolute time. *)

val cancel : 'a t -> handle -> unit
(** Cancel the event; a no-op if it already fired or was cancelled. *)

val peek_time : 'a t -> int option
(** Time of the earliest live event. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest live event as [(time, payload)]. *)

val pop_until : 'a t -> time:int -> (int * 'a) option
(** Like [pop] but only if the earliest event's time is [<= time]. *)

val clear : 'a t -> unit
