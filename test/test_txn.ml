(* Tests for Vista: free transactions over the Rio file cache, including
   crash atomicity across warm reboots at arbitrary interruption points. *)

module Engine = Rio_sim.Engine
module Costs = Rio_sim.Costs
module Kernel = Rio_kernel.Kernel
module Fs = Rio_fs.Fs
module Rio_cache = Rio_core.Rio_cache
module Warm_reboot = Rio_core.Warm_reboot
module Vista = Rio_txn.Vista
module Pattern = Rio_util.Pattern

let check = Alcotest.check

type world = {
  engine : Engine.t;
  mutable kernel : Kernel.t;
  mutable fs : Fs.t;
}

let make_world ?(seed = 1) () =
  let engine = Engine.create () in
  let kernel = Kernel.boot ~engine ~costs:Costs.default (Kernel.config_with_seed seed) in
  Kernel.format kernel;
  ignore
    (Rio_cache.create ~mem:(Kernel.mem kernel) ~layout:(Kernel.layout kernel)
       ~mmu:(Kernel.mmu kernel) ~engine ~costs:Costs.default ~hooks:(Kernel.hooks kernel)
       ~pool_alloc:(Kernel.pool_alloc kernel) ~protection:true ~dev:1 ());
  let fs = Kernel.mount kernel ~policy:Fs.Rio_policy in
  { engine; kernel; fs }

let crash_and_warm_reboot w =
  Fs.crash w.fs;
  ignore
    (Warm_reboot.perform ~mem:(Kernel.mem w.kernel) ~disk:(Kernel.disk w.kernel)
       ~layout:(Kernel.layout w.kernel) ~engine:w.engine
       ~reboot:(fun () ->
         let kernel2 =
           Kernel.boot_warm ~engine:w.engine ~costs:Costs.default (Kernel.config_with_seed 1)
             ~mem:(Kernel.mem w.kernel) ~disk:(Kernel.disk w.kernel)
         in
         ignore
           (Rio_cache.create ~mem:(Kernel.mem kernel2) ~layout:(Kernel.layout kernel2)
              ~mmu:(Kernel.mmu kernel2) ~engine:w.engine ~costs:Costs.default
              ~hooks:(Kernel.hooks kernel2) ~pool_alloc:(Kernel.pool_alloc kernel2)
              ~protection:true ~dev:1 ());
         let fs2 = Kernel.mount kernel2 ~policy:Fs.Rio_policy in
         w.kernel <- kernel2;
         w.fs <- fs2;
         fs2))

(* ---------------- basics (no crash) ---------------- *)

let test_create_read () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  check Alcotest.int "size" 4096 (Vista.size store);
  check Alcotest.bytes "zero-filled" (Bytes.make 64 '\000') (Vista.read store ~offset:100 ~len:64)

let test_commit_applies () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let txn = Vista.begin_txn store in
  Vista.write txn ~offset:10 (Bytes.of_string "hello");
  check Alcotest.bytes "visible inside txn" (Bytes.of_string "hello")
    (Vista.read_txn txn ~offset:10 ~len:5);
  Vista.commit txn;
  check Alcotest.bytes "visible after commit" (Bytes.of_string "hello")
    (Vista.read store ~offset:10 ~len:5);
  check Alcotest.bool "no open txn" false (Vista.in_txn store)

let test_abort_rolls_back () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t1 = Vista.begin_txn store in
  Vista.write t1 ~offset:0 (Bytes.of_string "baseline");
  Vista.commit t1;
  let t2 = Vista.begin_txn store in
  Vista.write t2 ~offset:0 (Bytes.of_string "scribble");
  Vista.write t2 ~offset:100 (Bytes.of_string "more");
  Vista.abort t2;
  check Alcotest.bytes "first write restored" (Bytes.of_string "baseline")
    (Vista.read store ~offset:0 ~len:8);
  check Alcotest.bytes "second write restored" (Bytes.make 4 '\000')
    (Vista.read store ~offset:100 ~len:4)

let test_abort_overlapping_writes () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t1 = Vista.begin_txn store in
  Vista.write t1 ~offset:0 (Bytes.of_string "AAAAAAAA");
  Vista.commit t1;
  let t2 = Vista.begin_txn store in
  Vista.write t2 ~offset:0 (Bytes.of_string "BBBB");
  Vista.write t2 ~offset:2 (Bytes.of_string "CCCC");
  Vista.abort t2;
  check Alcotest.bytes "overlaps undone newest-first" (Bytes.of_string "AAAAAAAA")
    (Vista.read store ~offset:0 ~len:8)

let test_one_txn_at_a_time () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let _t = Vista.begin_txn store in
  Alcotest.check_raises "second txn rejected"
    (Rio_fs.Fs_types.Fs_error "vista: a transaction is already open") (fun () ->
      ignore (Vista.begin_txn store))

let test_finished_txn_rejected () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t = Vista.begin_txn store in
  Vista.commit t;
  Alcotest.check_raises "write after commit"
    (Rio_fs.Fs_types.Fs_error "vista: transaction is finished") (fun () ->
      Vista.write t ~offset:0 (Bytes.of_string "x"))

let test_out_of_range () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:128 in
  let t = Vista.begin_txn store in
  Alcotest.check_raises "write past end" (Rio_fs.Fs_types.Fs_error "vista: write out of range")
    (fun () -> Vista.write t ~offset:120 (Bytes.of_string "0123456789"))

(* ---------------- crash atomicity ---------------- *)

let test_committed_txn_survives_crash () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t = Vista.begin_txn store in
  Vista.write t ~offset:0 (Bytes.of_string "durable");
  Vista.commit t;
  crash_and_warm_reboot w;
  check Alcotest.int "nothing to roll back" 0 (Vista.recover w.fs ~path:"/store");
  let store2 = Vista.open_existing w.fs ~path:"/store" in
  check Alcotest.bytes "committed data survived" (Bytes.of_string "durable")
    (Vista.read store2 ~offset:0 ~len:7)

let test_uncommitted_txn_rolled_back () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t0 = Vista.begin_txn store in
  Vista.write t0 ~offset:0 (Bytes.of_string "committed state!");
  Vista.commit t0;
  (* A transaction in flight when the OS dies. *)
  let t = Vista.begin_txn store in
  Vista.write t ~offset:0 (Bytes.of_string "half");
  Vista.write t ~offset:8 (Bytes.of_string "done");
  crash_and_warm_reboot w;
  let rolled = Vista.recover w.fs ~path:"/store" in
  check Alcotest.bool "undo records applied" true (rolled >= 2);
  let store2 = Vista.open_existing w.fs ~path:"/store" in
  check Alcotest.bytes "pre-transaction state restored" (Bytes.of_string "committed state!")
    (Vista.read store2 ~offset:0 ~len:16)

let test_recover_idempotent () =
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t = Vista.begin_txn store in
  Vista.write t ~offset:0 (Bytes.of_string "x");
  crash_and_warm_reboot w;
  ignore (Vista.recover w.fs ~path:"/store");
  check Alcotest.int "second recover is a no-op" 0 (Vista.recover w.fs ~path:"/store")

let test_crash_atomicity_fuzz () =
  (* A money-conservation invariant under crashes at every interruption
     point: N accounts, transfers move money between them inside
     transactions; whenever we crash-and-recover, the total must be exactly
     what committed transfers left. *)
  let accounts = 8 in
  let slot i = i * 8 in
  let read_balance store i =
    let b = Vista.read store ~offset:(slot i) ~len:8 in
    Int64.to_int (Bytes.get_int64_le b 0)
  in
  let write_balance txn i v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 (Int64.of_int v);
    Vista.write txn ~offset:(slot i) b
  in
  let total store =
    let sum = ref 0 in
    for i = 0 to accounts - 1 do
      sum := !sum + read_balance store i
    done;
    !sum
  in
  List.iter
    (fun (seed, crash_after_writes) ->
      let w = make_world ~seed () in
      let store = Vista.create w.fs ~path:"/bank" ~size:4096 in
      (* Fund account 0 with 1000 units inside a committed transaction. *)
      let t0 = Vista.begin_txn store in
      write_balance t0 0 1000;
      Vista.commit t0;
      (* Run transfers; crash after [crash_after_writes] single writes. *)
      let prng = Rio_util.Prng.create ~seed in
      let writes_done = ref 0 in
      let crashed = ref false in
      (try
         while not !crashed do
           let t = Vista.begin_txn store in
           let a = Rio_util.Prng.int prng accounts and b = Rio_util.Prng.int prng accounts in
           let amount = 1 + Rio_util.Prng.int prng 50 in
           let balance_a = read_balance store a in
           write_balance t a (balance_a - amount);
           incr writes_done;
           if !writes_done >= crash_after_writes then begin
             crashed := true;
             raise Exit (* crash mid-transaction: debit without credit *)
           end;
           let balance_b = read_balance store b in
           write_balance t b (balance_b + amount);
           incr writes_done;
           if !writes_done >= crash_after_writes then begin
             crashed := true;
             Vista.commit t;
             raise Exit (* crash right after commit *)
           end;
           Vista.commit t
         done
       with Exit -> ());
      crash_and_warm_reboot w;
      ignore (Vista.recover w.fs ~path:"/bank");
      let store2 = Vista.open_existing w.fs ~path:"/bank" in
      check Alcotest.int
        (Printf.sprintf "money conserved (seed %d, crash@%d)" seed crash_after_writes)
        1000 (total store2))
    [ (1, 1); (2, 2); (3, 3); (4, 7); (5, 10); (6, 15); (7, 24); (8, 33) ]

exception Simulated_crash

let test_crash_in_write_ahead_window () =
  (* Crash at Undo_append: the old image has reached the undo log but the
     in-place data write has not happened yet. Recovery must replay the
     surviving record and land exactly on the pre-transaction state. *)
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t0 = Vista.begin_txn store in
  Vista.write t0 ~offset:0 (Bytes.of_string "old old old!");
  Vista.commit t0;
  Vista.set_observer store (function
    | Vista.Undo_append _ -> raise Simulated_crash
    | _ -> ());
  let t = Vista.begin_txn store in
  (try Vista.write t ~offset:0 (Bytes.of_string "new new new!") with Simulated_crash -> ());
  crash_and_warm_reboot w;
  let rolled = Vista.recover w.fs ~path:"/store" in
  check Alcotest.int "the lone undo record replays" 1 rolled;
  let store2 = Vista.open_existing w.fs ~path:"/store" in
  check Alcotest.bytes "pre-transaction state restored" (Bytes.of_string "old old old!")
    (Vista.read store2 ~offset:0 ~len:12);
  check Alcotest.int "log truncated by recovery" 0 (Fs.stat w.fs "/store.undo").Fs.st_size

let test_crash_mid_commit_rolls_back () =
  (* Crash at Commit_start: every data write landed but the log was not yet
     cleared, so the commit point was not reached — recovery rolls the whole
     transaction back. *)
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:4096 in
  let t0 = Vista.begin_txn store in
  Vista.write t0 ~offset:0 (Bytes.of_string "committed!");
  Vista.commit t0;
  Vista.set_observer store (function
    | Vista.Commit_start -> raise Simulated_crash
    | _ -> ());
  let t = Vista.begin_txn store in
  Vista.write t ~offset:0 (Bytes.of_string "doomed txn");
  Vista.write t ~offset:100 (Bytes.of_string "more");
  (try Vista.commit t with Simulated_crash -> ());
  crash_and_warm_reboot w;
  let rolled = Vista.recover w.fs ~path:"/store" in
  check Alcotest.bool "both undo records replay" true (rolled >= 2);
  let store2 = Vista.open_existing w.fs ~path:"/store" in
  check Alcotest.bytes "first write rolled back" (Bytes.of_string "committed!")
    (Vista.read store2 ~offset:0 ~len:10);
  check Alcotest.bytes "second write rolled back" (Bytes.make 4 '\000')
    (Vista.read store2 ~offset:100 ~len:4)

let test_undo_log_is_the_only_cost () =
  (* "Free transactions": no fsync, no redo log — count the disk writes. *)
  let w = make_world () in
  let store = Vista.create w.fs ~path:"/store" ~size:8192 in
  Rio_disk.Disk.reset_stats (Kernel.disk w.kernel);
  for i = 0 to 19 do
    let t = Vista.begin_txn store in
    Vista.write t ~offset:(i * 16) (Pattern.fill ~seed:i ~len:16);
    Vista.commit t
  done;
  check Alcotest.int "zero disk writes for 20 transactions" 0
    (Rio_disk.Disk.stats (Kernel.disk w.kernel)).Rio_disk.Disk.writes;
  check Alcotest.int "one undo record per write" 20 (Vista.undo_records_logged store)

let () =
  Alcotest.run "rio_txn"
    [
      ( "basics",
        [
          Alcotest.test_case "create/read" `Quick test_create_read;
          Alcotest.test_case "commit applies" `Quick test_commit_applies;
          Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
          Alcotest.test_case "abort overlapping" `Quick test_abort_overlapping_writes;
          Alcotest.test_case "one txn at a time" `Quick test_one_txn_at_a_time;
          Alcotest.test_case "finished txn rejected" `Quick test_finished_txn_rejected;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
        ] );
      ( "crash_atomicity",
        [
          Alcotest.test_case "committed survives" `Quick test_committed_txn_survives_crash;
          Alcotest.test_case "uncommitted rolled back" `Quick test_uncommitted_txn_rolled_back;
          Alcotest.test_case "recover idempotent" `Quick test_recover_idempotent;
          Alcotest.test_case "atomicity fuzz" `Slow test_crash_atomicity_fuzz;
          Alcotest.test_case "write-ahead window" `Quick test_crash_in_write_ahead_window;
          Alcotest.test_case "mid-commit rollback" `Quick test_crash_mid_commit_rolls_back;
          Alcotest.test_case "free transactions" `Quick test_undo_log_is_the_only_cost;
        ] );
    ]
