type t = {
  tree : File_tree.t;
  root : string;
  scale : float;
}

let create ?(scale = 1.0) ?(seed = 21) ?(root = "/andrew") () =
  let total_bytes = int_of_float (scale *. 1_100_000.) in
  let spec =
    {
      (File_tree.default ~root:(root ^ "/src") ~total_bytes) with
      File_tree.seed;
      files_per_dir = 6;
      dirs_per_level = 2;
      depth = 2;
    }
  in
  { tree = File_tree.generate spec; root; scale }

let bytes t = File_tree.total_bytes t.tree

let ops t =
  let src_root = t.root ^ "/src" in
  let copy_root = t.root ^ "/copy" in
  let copy_tree = File_tree.rebase t.tree ~src_root ~dst_root:copy_root in
  (* Phase 1+2: MakeDir + Copy (the source is created here: the benchmark
     starts from a pristine tree each run). *)
  let make_phase = (Script.Mkdir t.root :: File_tree.create_ops t.tree) in
  let copy_phase = File_tree.copy_ops t.tree ~src_root ~dst_root:copy_root in
  (* Phase 3: ScanDir — stat every file and directory (find/ls/du). *)
  let scan_phase =
    List.map (fun d -> Script.Stat d) copy_tree.File_tree.dirs
    @ List.map (fun (p, _, _) -> Script.Stat p) copy_tree.File_tree.files
  in
  (* Phase 4: ReadAll — grep and wc read every byte. *)
  let read_phase =
    List.concat_map
      (fun (p, _, _) -> [ Script.Read_whole p; Script.Cpu 800 ])
      copy_tree.File_tree.files
  in
  (* Phase 5: Make — compile each source file (CPU-dominated), write its
     object, then "link" an executable. *)
  let compile_us_per_file =
    (* ~11 s of compilation at scale 1 spread over the tree. *)
    let files = max 1 (List.length t.tree.File_tree.files) in
    int_of_float (t.scale *. 11_000_000.) / files
  in
  let compile_phase =
    List.concat_map
      (fun (p, seed, size) ->
        let obj = p ^ ".o" in
        Script.Cpu compile_us_per_file
        :: Script.write_file_ops obj ~seed:(seed lxor 0xABCD) ~len:((size / 2) + 256))
      copy_tree.File_tree.files
    @ (Script.Cpu 500_000
      :: Script.write_file_ops (t.root ^ "/a.out") ~seed:0xBEEF
           ~len:(min 400_000 (File_tree.total_bytes t.tree / 4)))
  in
  make_phase @ copy_phase @ scan_phase @ read_phase @ compile_phase

let runner t = Script.runner (ops t)

let run t fs = Script.run_all (runner t) fs
