lib/kasm/asm.ml: Array Bytes Int32 List Printf Rio_cpu Rio_mem
