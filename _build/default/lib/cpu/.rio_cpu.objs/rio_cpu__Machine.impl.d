lib/cpu/machine.ml: Array Format Isa Printf Rio_mem Rio_vm
