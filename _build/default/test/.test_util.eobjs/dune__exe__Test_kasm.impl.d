test/test_kasm.ml: Alcotest Bytes Char Int32 List Option Rio_cpu Rio_kasm Rio_mem Rio_vm String
