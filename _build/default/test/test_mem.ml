(* Tests for physical memory, the region layout, and the page allocator. *)

module Phys_mem = Rio_mem.Phys_mem
module Layout = Rio_mem.Layout
module Page_alloc = Rio_mem.Page_alloc

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let small_mem () = Phys_mem.create ~bytes_total:(64 * 8192)

(* ---------------- phys_mem ---------------- *)

let test_sizes () =
  let m = Phys_mem.create ~bytes_total:10_000 in
  check Alcotest.int "rounded to pages" (2 * 8192) (Phys_mem.size m);
  check Alcotest.int "page count" 2 (Phys_mem.page_count m);
  check Alcotest.int "page size" 8192 Phys_mem.page_size

let test_rw_roundtrip () =
  let m = small_mem () in
  Phys_mem.write_u8 m 100 0xAB;
  check Alcotest.int "u8" 0xAB (Phys_mem.read_u8 m 100);
  Phys_mem.write_u32 m 200 0xDEADBEEF;
  check Alcotest.int "u32" 0xDEADBEEF (Phys_mem.read_u32 m 200);
  Phys_mem.write_u64 m 300 0x1234_5678_9ABC;
  check Alcotest.int "u64" 0x1234_5678_9ABC (Phys_mem.read_u64 m 300)

let test_bounds () =
  let m = small_mem () in
  Alcotest.check_raises "read past end"
    (Invalid_argument
       (Printf.sprintf "Phys_mem: access [%#x,+%d) outside %#x bytes" (Phys_mem.size m) 1
          (Phys_mem.size m)))
    (fun () -> ignore (Phys_mem.read_u8 m (Phys_mem.size m)));
  check Alcotest.bool "in_range true" true (Phys_mem.in_range m 0 ~len:8);
  check Alcotest.bool "in_range false" false (Phys_mem.in_range m (Phys_mem.size m - 4) ~len:8)

let test_blit () =
  let m = small_mem () in
  let data = Bytes.of_string "hello rio" in
  Phys_mem.blit_in m 4000 data;
  check Alcotest.bytes "blit roundtrip" data (Phys_mem.blit_out m 4000 ~len:(Bytes.length data));
  Phys_mem.blit_within m ~src:4000 ~dst:5000 ~len:9;
  check Alcotest.bytes "blit_within" data (Phys_mem.blit_out m 5000 ~len:9)

let test_fill_and_checksum () =
  let m = small_mem () in
  Phys_mem.fill m 0 ~len:100 'z';
  let c1 = Phys_mem.checksum_range m 0 ~len:100 in
  Phys_mem.write_u8 m 50 0;
  check Alcotest.bool "checksum changes" true (c1 <> Phys_mem.checksum_range m 0 ~len:100)

let test_flip_bit () =
  let m = small_mem () in
  Phys_mem.write_u8 m 10 0b1010;
  Phys_mem.flip_bit m 10 ~bit:0;
  check Alcotest.int "bit flipped" 0b1011 (Phys_mem.read_u8 m 10);
  Phys_mem.flip_bit m 10 ~bit:0;
  check Alcotest.int "flipped back" 0b1010 (Phys_mem.read_u8 m 10)

let test_warm_vs_cold () =
  let m = small_mem () in
  Phys_mem.write_u8 m 77 42;
  Phys_mem.reset m;
  check Alcotest.int "warm reset preserves" 42 (Phys_mem.read_u8 m 77);
  Phys_mem.power_cycle m;
  check Alcotest.int "cold boot scrubs" 0 (Phys_mem.read_u8 m 77)

let test_dump_restore () =
  let m = small_mem () in
  Phys_mem.write_u32 m 123 999;
  let dump = Phys_mem.dump m in
  Phys_mem.write_u32 m 123 0;
  Phys_mem.restore_dump m dump;
  check Alcotest.int "restored" 999 (Phys_mem.read_u32 m 123)

let prop_u64_roundtrip =
  QCheck.Test.make ~name:"u64 write/read roundtrip" ~count:300
    QCheck.(pair (int_range 0 1000) (int_bound max_int))
    (fun (off, v) ->
      let m = small_mem () in
      Phys_mem.write_u64 m (off * 8) v;
      Phys_mem.read_u64 m (off * 8) = v)

(* ---------------- layout ---------------- *)

let test_layout_contiguous () =
  let l = Layout.create Layout.default_config in
  let rec scan = function
    | a :: (b :: _ as rest) ->
      check Alcotest.int "regions abut" (a.Layout.base + a.Layout.bytes) b.Layout.base;
      scan rest
    | [ _ ] | [] -> ()
  in
  scan (Layout.regions l)

let test_layout_within_memory () =
  let cfg = Layout.default_config in
  let l = Layout.create cfg in
  let last = List.nth (Layout.regions l) (List.length (Layout.regions l) - 1) in
  check Alcotest.bool "fits in memory" true
    (last.Layout.base + last.Layout.bytes <= cfg.Layout.total_bytes)

let test_layout_registry_capacity () =
  let l = Layout.create Layout.default_config in
  let reg = Layout.region l Layout.Registry in
  check Alcotest.bool "registry covers all file-cache pages" true
    (reg.Layout.bytes / 40 >= Layout.file_cache_pages l)

let test_layout_kind_of_addr () =
  let l = Layout.create Layout.default_config in
  let text = Layout.region l Layout.Kernel_text in
  check
    (Alcotest.option Alcotest.string)
    "text region" (Some "kernel-text")
    (Option.map Layout.region_kind_name (Layout.kind_of_addr l text.Layout.base));
  check
    (Alcotest.option Alcotest.string)
    "past end" None
    (Option.map Layout.region_kind_name
       (Layout.kind_of_addr l Layout.default_config.Layout.total_bytes))

let test_layout_paper_config () =
  let l = Layout.create Layout.paper_config in
  let pool = Layout.region l Layout.Page_pool in
  (* The paper's machine: 128 MB with the UBC using the bulk of it. *)
  check Alcotest.bool "pool is most of memory" true
    (pool.Layout.bytes > 90 * 1024 * 1024)

let test_layout_too_small () =
  Alcotest.check_raises "no room for pool"
    (Invalid_argument "Layout.create: fixed regions leave no room for the UBC") (fun () ->
      ignore
        (Layout.create
           { Layout.default_config with Layout.total_bytes = 2 * 1024 * 1024 }))

(* ---------------- page allocator ---------------- *)

let region_of l = Layout.region l Layout.Page_pool

let test_alloc_free () =
  let l = Layout.create Layout.default_config in
  let a = Page_alloc.create ~region:(region_of l) in
  let total = Page_alloc.total_pages a in
  let p1 = Option.get (Page_alloc.alloc a) in
  let p2 = Option.get (Page_alloc.alloc a) in
  check Alcotest.bool "distinct pages" true (p1 <> p2);
  check Alcotest.int "free count drops" (total - 2) (Page_alloc.free_pages a);
  Page_alloc.free a p1;
  check Alcotest.int "free count returns" (total - 1) (Page_alloc.free_pages a);
  check Alcotest.bool "allocated flag" true (Page_alloc.is_allocated a p2);
  check Alcotest.bool "freed flag" false (Page_alloc.is_allocated a p1)

let test_alloc_exhaustion () =
  let l = Layout.create Layout.default_config in
  let a = Page_alloc.create ~region:(region_of l) in
  let n = Page_alloc.total_pages a in
  for _ = 1 to n do
    check Alcotest.bool "alloc succeeds" true (Page_alloc.alloc a <> None)
  done;
  check (Alcotest.option Alcotest.int) "exhausted" None (Page_alloc.alloc a)

let test_double_free () =
  let l = Layout.create Layout.default_config in
  let a = Page_alloc.create ~region:(region_of l) in
  let p = Option.get (Page_alloc.alloc a) in
  Page_alloc.free a p;
  Alcotest.check_raises "double free rejected" (Invalid_argument "Page_alloc.free: double free")
    (fun () -> Page_alloc.free a p)

let test_misaligned_free () =
  let l = Layout.create Layout.default_config in
  let a = Page_alloc.create ~region:(region_of l) in
  let p = Option.get (Page_alloc.alloc a) in
  Alcotest.check_raises "misaligned rejected"
    (Invalid_argument "Page_alloc: address not page-aligned") (fun () ->
      Page_alloc.free a (p + 1))

let test_alloc_reuse_lowest () =
  let l = Layout.create Layout.default_config in
  let a = Page_alloc.create ~region:(region_of l) in
  let p1 = Option.get (Page_alloc.alloc a) in
  let _p2 = Option.get (Page_alloc.alloc a) in
  Page_alloc.free a p1;
  check Alcotest.int "lowest page reused" p1 (Option.get (Page_alloc.alloc a))

let prop_alloc_unique =
  QCheck.Test.make ~name:"allocations are unique until freed" ~count:50
    QCheck.(int_range 1 100)
    (fun n ->
      let l = Layout.create Layout.default_config in
      let a = Page_alloc.create ~region:(region_of l) in
      let pages = List.filter_map (fun _ -> Page_alloc.alloc a) (List.init n Fun.id) in
      List.length (List.sort_uniq compare pages) = List.length pages)

let () =
  Alcotest.run "rio_mem"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "sizes" `Quick test_sizes;
          Alcotest.test_case "rw roundtrip" `Quick test_rw_roundtrip;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "blit" `Quick test_blit;
          Alcotest.test_case "fill + checksum" `Quick test_fill_and_checksum;
          Alcotest.test_case "flip_bit" `Quick test_flip_bit;
          Alcotest.test_case "warm vs cold boot" `Quick test_warm_vs_cold;
          Alcotest.test_case "dump/restore" `Quick test_dump_restore;
          qtest prop_u64_roundtrip;
        ] );
      ( "layout",
        [
          Alcotest.test_case "contiguous" `Quick test_layout_contiguous;
          Alcotest.test_case "fits memory" `Quick test_layout_within_memory;
          Alcotest.test_case "registry capacity" `Quick test_layout_registry_capacity;
          Alcotest.test_case "kind_of_addr" `Quick test_layout_kind_of_addr;
          Alcotest.test_case "paper config" `Quick test_layout_paper_config;
          Alcotest.test_case "too small" `Quick test_layout_too_small;
        ] );
      ( "page_alloc",
        [
          Alcotest.test_case "alloc/free" `Quick test_alloc_free;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "misaligned free" `Quick test_misaligned_free;
          Alcotest.test_case "lowest-first reuse" `Quick test_alloc_reuse_lowest;
          qtest prop_alloc_unique;
        ] );
    ]
