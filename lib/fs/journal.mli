(** Metadata write-ahead log — the AdvFS model of Table 2.

    AdvFS "reduces the penalty of metadata updates by writing metadata
    sequentially to a log" (§4). Records are appended with asynchronous
    writes; because the log is contiguous, consecutive appends pay transfer
    time only (no seek), which is the whole point. At recovery the log is
    replayed into the metadata sectors it shadows. *)

type t

val create : disk:Rio_disk.Disk.t -> start_sector:int -> sectors:int -> t

val append : t -> sector:int -> bytes -> unit
(** Log "these bytes belong at [sector]". Records are staged and pushed as
    one sequential asynchronous write per 64 KB group (group commit,
    Hagmann87). When the log fills, a checkpoint is forced: the caller's
    [on_checkpoint] callback (set below) must flush real metadata, after
    which the log resets. *)

val flush_group : t -> unit
(** Push any staged records now (fsync-path and update-daemon hook). *)

val set_on_checkpoint : t -> (unit -> unit) -> unit

val set_on_event : t -> (label:string -> unit) -> unit
(** Observer for group-commit ordering points: each {!flush_group} that
    actually writes announces a ["wb-commit journal s<sector> x<count>"]
    label just before handing the group to the backend. The crash-schedule
    checker wires this into {!Hooks.t.wb_event} to crash inside the
    window. *)

val checkpoint : t -> unit
(** Flush callback + reset the log head (also called by the update
    daemon). *)

val records_logged : t -> int

val bytes_logged : t -> int

val replay : disk:Rio_disk.Disk.t -> start_sector:int -> sectors:int -> int
(** Scan the log on the (post-crash) disk and apply every complete,
    checksummed record to its home sector. Returns the number of records
    applied. *)

(** {1 World-template rewind} *)

type state

val save : t -> state
(** Capture the log cursor, counters, and staged group-commit bytes. *)

val restore : t -> state -> unit
(** Rewind to a captured {!save} of the same journal. *)
