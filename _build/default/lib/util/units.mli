(** Size and simulated-time units.

    Simulated time is an [int] count of microseconds; at 2^62 µs the clock
    covers ~146 millennia, so overflow is not a concern. *)

val kib : int
val mib : int

val kb : int -> int
(** [kb n] is [n * 1024] bytes. *)

val mb : int -> int
(** [mb n] is [n * 1024 * 1024] bytes. *)

type usec = int
(** Microseconds of simulated time. *)

val usec : int -> usec
val msec : int -> usec
val sec : int -> usec
val minutes : int -> usec

val usec_of_sec_f : float -> usec
(** Fractional seconds to µs, rounded. *)

val sec_of_usec : usec -> float
(** µs to fractional seconds. *)

val pp_usec : Format.formatter -> usec -> unit
(** Human-readable duration: "12.3ms", "4.56s", ... *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable size: "8KB", "1.5MB", ... *)
