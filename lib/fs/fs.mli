(** The file system: a Unix-like FS over the simulated disk and memory,
    parameterized by the write policies of Table 2.

    Metadata (superblock, bitmaps, inodes, directory blocks) is cached in
    the buffer-cache region; regular file data in UBC pages drawn from the
    shared page pool. The cached page bytes are authoritative — after a
    crash, recovery re-reads everything from disk (plus, for Rio, from the
    memory image via the warm reboot).

    Every operation charges simulated time: system-call overhead, pathname
    lookup, memory copies, and whatever disk traffic the policy incurs. *)

type policy =
  | Mfs  (** Memory File System: no disk I/O at all (the speed ceiling). *)
  | Ufs_default
      (** Digital Unix UFS: asynchronous data after 64 KB clusters /
          non-sequential writes / the update daemon; {e synchronous}
          metadata (inodes, directories). *)
  | Ufs_delayed
      (** The "no-order" optimization: all data and metadata delayed until
          the next update run — risks 30 s of both. *)
  | Wt_close  (** UFS + fsync on every close. *)
  | Wt_write  (** UFS + synchronous data on every write (Rio's reliability peer). *)
  | Advfs  (** Asynchronous data; metadata journaled sequentially. *)
  | Rio_policy
      (** No reliability-induced writes: disk traffic only on cache
          overflow. fsync and sync return immediately (§2.3). *)
  | Rio_idle
      (** The paper's future-work variant (§2.3): reliability-wise
          identical to {!Rio_policy}, but the update daemon trickles dirty
          blocks to disk during idle periods so later evictions rarely
          stall on a synchronous write-back. *)

val policy_name : policy -> string

val all_policies : policy list

(** {1 Formatting and mounting} *)

type geometry = {
  total_sectors : int;
  inode_count : int;
  swap_sectors : int;
  journal_sectors : int;
}

val default_geometry : disk_sectors:int -> mem_bytes:int -> geometry
(** Swap sized to hold all of physical memory (for the warm-reboot dump),
    1 MB of journal, 1 inode per 4 data blocks. *)

val mkfs : disk:Rio_disk.Disk.t -> geometry -> unit
(** Format: superblock, empty bitmaps, free inode table, empty root
    directory. Untimed (happens before the experiment clock starts). *)

type t

val mount :
  engine:Rio_sim.Engine.t ->
  costs:Rio_sim.Costs.t ->
  mem:Rio_mem.Phys_mem.t ->
  meta_alloc:Rio_mem.Page_alloc.t ->
  pool_alloc:Rio_mem.Page_alloc.t ->
  disk:Rio_disk.Disk.t ->
  policy:policy ->
  hooks:Hooks.t ->
  wb_unordered:bool ->
  t
(** Read the superblock and start the update daemon (for the policies that
    have one). Raises {!Fs_types.Fs_error} on a bad superblock.

    Every disk-backed policy routes the daemon's and [sync]'s asynchronous
    write-backs through a {!Write_behind} pipeline (batching, coalescing,
    group commit), whose ordering points fire {!Hooks.t.wb_event}.
    [wb_unordered:true] plants the pipeline's ordering bug — see
    {!Write_behind.create}; pass [false] everywhere outside the fuzzer's
    ablation matrix. *)

val unmount : t -> unit
(** Flush everything, drain the disk, mark the volume clean, stop the
    daemon. *)

val crash : t -> unit
(** The system just crashed: lose queued disk writes (tearing the in-flight
    sector), stop the daemon. Memory is left exactly as it was — that is
    Rio's whole point. The [t] must not be used afterwards; recovery
    remounts. *)

(** {1 Introspection} *)

val engine : t -> Rio_sim.Engine.t
val policy : t -> policy
val hooks : t -> Hooks.t
val superblock : t -> Ondisk.superblock
val disk : t -> Rio_disk.Disk.t
val meta_cache : t -> Block_cache.t
val data_cache : t -> Block_cache.t

val write_behind : t -> Write_behind.t option
(** The asynchronous write-behind pipeline ([None] for the disk-less
    Memory File System). *)

(** {1 Files} *)

type fd

type stat = {
  st_ino : int;
  st_ftype : Fs_types.ftype;
  st_size : int;
  st_nlink : int;
  st_mtime : int;
}

val create : t -> string -> fd
(** Create (or truncate) a regular file and open it. *)

val open_file : t -> string -> fd
(** Open an existing regular file. *)

val close : t -> fd -> unit

val read : t -> fd -> len:int -> bytes
(** Read at the cursor, advancing it; short reads at EOF. *)

val write : t -> fd -> bytes -> unit
(** Write at the cursor, advancing it. *)

val pread : t -> fd -> offset:int -> len:int -> bytes

val pwrite : t -> fd -> offset:int -> bytes -> unit

val seek : t -> fd -> int -> unit

val fsync : t -> fd -> unit

val fd_size : t -> fd -> int

val fd_ino : t -> fd -> int

(** {1 Namespace} *)

val mkdir : t -> string -> unit
val rmdir : t -> string -> unit
(** Directory must be empty. *)

val link : t -> string -> string -> unit
(** [link t existing path] creates a hard link: a second directory entry
    for the same inode. Not allowed on directories. *)

val unlink : t -> string -> unit
(** Drops one link; the inode and its blocks are freed when the last link
    goes. *)

val rename : t -> string -> string -> unit
(** An existing regular-file target is replaced. Within one directory the
    removal and insertion collapse into a single atomic metadata update
    whenever the entry's block can absorb the name change; across
    directories the new entry is inserted before the old one is removed,
    so a crash never makes the file unreachable. *)

val readdir : t -> string -> string list
(** Sorted names. *)

val stat : t -> string -> stat
(** Follows symbolic links. *)

val lstat : t -> string -> stat
(** Does not follow a final symbolic link. *)

val exists : t -> string -> bool

val sync : t -> unit
(** Durability barrier: flush both caches through the write-behind
    pipeline and drain the disk. Immediate no-op under Rio (§2.3) and
    MFS; Rio_idle honors it so idle-trickled write-behind is checkable. *)

val symlink : t -> target:string -> string -> unit
(** Create a symbolic link at the path pointing at [target] (absolute or
    relative to the link's directory). Stored through the cache like the
    paper's symlinks (§2). *)

val readlink : t -> string -> string

val truncate : t -> string -> int -> unit
(** Shrink (freeing blocks, zeroing the boundary tail) or extend (creating
    a hole) a regular file. *)

(** {1 Convenience} *)

val read_file : t -> string -> bytes
val write_file : t -> string -> bytes -> unit
(** create + write + close. *)

type fs_stats = {
  blocks_total : int;
  blocks_free : int;
  inodes_total : int;
  inodes_free : int;
}

val statfs : t -> fs_stats
(** Block and inode usage from the allocation bitmaps. *)

(** {1 Warm-reboot support} *)

val write_by_ino : t -> ino:int -> offset:int -> bytes -> unit
(** Restore file-page contents by inode number without touching metadata:
    clamped to the inode's current size; holes are skipped. Used by Rio's
    user-level UBC restore sweep (§2.2). *)

val update_daemon_flush : t -> int
(** Run one update-daemon pass now; returns blocks flushed. *)

val remount_cold : t -> unit
(** Flush everything and drop both caches — equivalent to unmount + mount.
    Used to measure cold-cache workloads. *)

(** {1 World-template rewind} *)

type checkpoint

val checkpoint : t -> checkpoint
(** Capture the host-side file-system state: block-cache population,
    in-core inodes, descriptor table, allocator hints/counters, journal
    cursor, and update-daemon due time. Page and disk contents are
    covered by the memory snapshot and disk checkpoint. *)

val restore : t -> checkpoint -> unit
(** Rewind to a checkpoint of the same mount. Call after the engine
    queue has been cleared and its clock rewound — a live update daemon
    is re-scheduled at its checkpointed absolute due time. *)

(** {1 The uniform syscall entry}

    One decoded representation of the syscall surface. The crash-schedule
    checker, the fuzzer, and the task scheduler all dispatch through
    {!Syscall.run}; the per-op functions above are thin compatibility
    wrappers over it. *)

module Syscall : sig
  type call =
    | Creat of string
    | Open of string
    | Close of fd
    | Read of { fd : fd; len : int }
    | Write of { fd : fd; data : bytes }
    | Pread of { fd : fd; offset : int; len : int }
    | Pwrite of { fd : fd; offset : int; data : bytes }
    | Seek of fd * int
    | Fsync of fd
    | Mkdir of string
    | Rmdir of string
    | Link of { existing : string; path : string }
    | Unlink of string
    | Rename of { src : string; dst : string }
    | Readdir of string
    | Stat of string
    | Lstat of string
    | Exists of string
    | Symlink of { target : string; path : string }
    | Readlink of string
    | Truncate of string * int
    | Read_file of string
    | Write_file of { path : string; data : bytes }
    | Sync

  type result =
    | Unit
    | Fd of fd
    | Data of bytes
    | Names of string list
    | Stat_r of stat
    | Bool of bool
    | Path of string

  val name : call -> string
  (** Stable short name ("creat", "pwrite", ...) for attribution. *)

  val mutates : call -> bool
  (** Whether the call can mutate shared file-system state. The task
      layer takes the ownership lock exactly for mutating calls. *)

  val run : t -> call -> result
  (** Decode and execute. Raises {!Fs_types.Fs_error} like the wrappers. *)

  (** Result projections; raise {!Fs_types.Fs_error} on a shape mismatch. *)

  val fd_exn : result -> fd
  val data_exn : result -> bytes
  val names_exn : result -> string list
  val stat_exn : result -> stat
  val bool_exn : result -> bool
  val path_exn : result -> string
end
