(** The Andrew benchmark model (§4): "creates and copies a source hierarchy;
    examines the hierarchy using find, ls, du, grep, and wc; and compiles
    the source hierarchy" — dominated by CPU-intensive compilation.

    Five phases: MakeDir, Copy, ScanDir (stat), ReadAll (grep/wc), Make
    (compile: CPU burn plus object-file writes). *)

type t

val create : ?scale:float -> ?seed:int -> ?root:string -> unit -> t
(** [scale] multiplies the source-tree size and compile time (1.0 ≈ the
    classic benchmark's ~2 MB tree and ~11 s of compilation). [root] lets
    several concurrent instances run in disjoint directories. *)

val ops : t -> Script.op list
(** The full five-phase operation stream (one runnable instance). *)

val run : t -> Rio_fs.Fs.t -> unit

val runner : t -> Script.runner

val bytes : t -> int
