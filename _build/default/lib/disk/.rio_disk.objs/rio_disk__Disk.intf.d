lib/disk/disk.mli: Format Rio_sim
