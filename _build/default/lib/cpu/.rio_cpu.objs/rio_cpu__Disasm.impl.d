lib/cpu/disasm.ml: Bytes Format Int32 Isa List Rio_mem
