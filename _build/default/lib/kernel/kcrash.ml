type cause =
  | Trap of Rio_cpu.Machine.trap
  | Hang
  | Panic of string

type info = {
  cause : cause;
  during : string;
  at_us : int;
}

exception Crashed of info

let crash cause ~during ~at_us = raise (Crashed { cause; during; at_us })

let cause_to_string = function
  | Trap t -> Rio_cpu.Machine.trap_to_string t
  | Hang -> "system hang (watchdog)"
  | Panic msg -> Printf.sprintf "kernel panic: %s" msg

let pp_info ppf i =
  Format.fprintf ppf "crash at %a during %s: %s" Rio_util.Units.pp_usec i.at_us i.during
    (cause_to_string i.cause)

let message_of i =
  (* The "console message": trap kind plus the faulting context, but not the
     exact address — two wild stores to different addresses print the same
     message, as on a real console. *)
  match i.cause with
  | Trap (Rio_cpu.Machine.Illegal_address _) -> Printf.sprintf "unable to handle kernel paging request in %s" i.during
  | Trap (Rio_cpu.Machine.Protection_violation _) ->
    Printf.sprintf "rio: blocked illegal store to file cache in %s" i.during
  | Trap (Rio_cpu.Machine.Illegal_instruction _) ->
    Printf.sprintf "illegal instruction in %s" i.during
  | Trap (Rio_cpu.Machine.Consistency_panic m) ->
    Printf.sprintf "panic: %s" (Rio_kasm.Kprogs.message_text m)
  | Hang -> "watchdog: system hung"
  | Panic msg -> Printf.sprintf "panic: %s" msg

let () =
  Printexc.register_printer (function
    | Crashed i -> Some (Format.asprintf "Kcrash.Crashed(%a)" pp_info i)
    | _ -> None)
