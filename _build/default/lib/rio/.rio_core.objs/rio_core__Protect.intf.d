lib/rio/protect.mli: Rio_mem Rio_sim Rio_util Rio_vm
