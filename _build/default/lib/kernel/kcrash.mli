(** Crash signalling.

    A system crash in the model is an OCaml exception that unwinds out of
    whatever the kernel was doing — mid-file-operation included, leaving the
    file system exactly as inconsistent as a real crash would. The crash
    campaign catches it at top level. *)

type cause =
  | Trap of Rio_cpu.Machine.trap
      (** The interpreted CPU trapped (illegal address, protection
          violation, illegal instruction, consistency panic). *)
  | Hang  (** The machine exhausted its instruction budget (hard hang). *)
  | Panic of string
      (** Native kernel code detected an inconsistency (a file-system sanity
          check fired on fault-corrupted state) and panicked. *)

type info = {
  cause : cause;
  during : string;  (** What the kernel was doing ("activity:k_bcopy", ...). *)
  at_us : int;  (** Simulated time of death. *)
}

exception Crashed of info

val crash : cause -> during:string -> at_us:int -> 'a
(** Raise {!Crashed}. *)

val cause_to_string : cause -> string

val pp_info : Format.formatter -> info -> unit

val message_of : info -> string
(** A stable one-line "console message" for the crash — the analogue of the
    paper's 74 unique error messages, used to count crash diversity. *)
