lib/workload/sdet.mli: Rio_fs Script
